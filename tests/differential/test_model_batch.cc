/**
 * @file
 * Differential verification of the batched model-lane replay
 * (runModelBatch in sweep.cc): a model group stepping the whole
 * TAGE/perceptron zoo in one trace pass must be bit-identical to the
 * per-config fallback (runConfigJob -> runModelReplay) and to the
 * naive reference mirrors, for every SIMD dispatch target, shard
 * count and fuzzed group composition; speculative segments must be
 * deterministic with a bounded epsilon and exact under a covering
 * warm-up.
 *
 * The suite name is load-bearing: the tsan preset runs
 * "...|SegmentParallel|TageZoo|PerceptronZoo|ModelBatch", so the
 * shards x segments task grid and the shared per-task key blocks are
 * replayed under the race detector.  The long campaign at the bottom
 * additionally needs BPSIM_SLOW_TESTS=1 (the executable carries the
 * `zoo` ctest label).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/packed_pht.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "sim/sweep.hh"
#include "verify/differential.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::verify;

namespace {

constexpr SchemeKind kZooKinds[] = {SchemeKind::Tage,
                                    SchemeKind::Perceptron};

/** Valid strictly-ascending history ladders (TageParams::validate). */
const std::vector<unsigned> kHistoryVariants[] = {
    {4, 8, 16, 32},
    {2, 5, 11, 23},
    {3, 9, 27},
    {6},
    {1, 2, 4, 8, 16, 32, 48, 64},
};
constexpr std::size_t kHistoryVariantCount =
    sizeof(kHistoryVariants) / sizeof(kHistoryVariants[0]);

MemoryTrace
fuzzTrace(std::uint64_t seed, std::uint64_t conditionals)
{
    WorkloadParams p;
    p.name = "modelbatch-diff-" + std::to_string(seed);
    p.seed = seed;
    p.staticBranches = 90;
    p.functionCount = 9;
    p.targetConditionals = conditionals;
    return generateTrace(p);
}

/** Fuzz the zoo knobs that select model geometry. */
void
fuzzZooKnobs(SweepOptions &opts, Pcg32 &rng)
{
    opts.tageTagBits = 5 + rng.nextBounded(6); // 5..10
    opts.tageHistories =
        kHistoryVariants[rng.nextBounded(kHistoryVariantCount)];
    opts.perceptronTables = 2 + rng.nextBounded(4); // 2..5
}

/** A valid fuzzed zoo split for @p kind at @p total bits. */
ConfigJob
fuzzZooJob(SchemeKind kind, unsigned total, Pcg32 &rng)
{
    unsigned r;
    if (kind == SchemeKind::Tage) {
        // entryBits >= 1 AND baseBits >= 1.
        r = 1 + rng.nextBounded(total - 1);
    } else {
        // historyBits in 1..total; entryBits 0 is a legal point.
        r = 1 + rng.nextBounded(total);
    }
    return ConfigJob{kind, total, r, total - r};
}

/** A zoo job's naive reference-model twin under @p opts. */
RefConfig
refConfigFor(const ConfigJob &job, const SweepOptions &opts)
{
    RefConfig config;
    config.scheme = job.kind == SchemeKind::Tage
                        ? RefScheme::Tage
                        : RefScheme::Perceptron;
    config.rowBits = job.rowBits;
    config.colBits = job.colBits;
    config.tagBits = opts.tageTagBits;
    config.tageHistories = opts.tageHistories;
    config.perceptronTables = opts.perceptronTables;
    return config;
}

/** Run @p jobs through planFusedGroups/runFusedGroup. */
std::vector<ConfigResult>
runGroups(const PreparedTrace &t, const std::vector<ConfigJob> &jobs,
          const SweepOptions &opts, unsigned threads)
{
    StreamCache cache(t, opts);
    cache.prepare(jobs, 1);
    std::vector<ConfigResult> slots(jobs.size());
    for (const FusedGroup &group :
         planFusedGroups(jobs, opts, threads))
        runFusedGroup(group, jobs, cache, slots.data());
    return slots;
}

/** Exact equality on every surface point (bit-identity contract). */
void
expectSurfacesIdentical(const SweepResult &a, const SweepResult &b,
                        const char *what)
{
    ASSERT_EQ(a.misprediction.tiers().size(),
              b.misprediction.tiers().size())
        << what;
    for (std::size_t t = 0; t < a.misprediction.tiers().size(); ++t) {
        const SurfaceTier &ta = a.misprediction.tiers()[t];
        const SurfaceTier &tb = b.misprediction.tiers()[t];
        ASSERT_EQ(ta.points.size(), tb.points.size()) << what;
        for (std::size_t p = 0; p < ta.points.size(); ++p) {
            ASSERT_EQ(ta.points[p].rowBits, tb.points[p].rowBits);
            ASSERT_EQ(ta.points[p].value, tb.points[p].value)
                << what << ": tier " << ta.totalBits << " row "
                << ta.points[p].rowBits;
        }
    }
    ASSERT_EQ(a.bhtMissRate, b.bhtMissRate) << what;
}

std::size_t
pointCount(const SweepResult &r)
{
    std::size_t n = 0;
    for (const SurfaceTier &tier : r.misprediction.tiers())
        n += tier.points.size();
    return n;
}

/** Largest per-point |delta| between two sweeps of the same plan. */
double
maxPointDelta(const SweepResult &a, const SweepResult &b)
{
    double worst = 0.0;
    for (std::size_t t = 0; t < a.misprediction.tiers().size(); ++t) {
        const SurfaceTier &ta = a.misprediction.tiers()[t];
        const SurfaceTier &tb = b.misprediction.tiers()[t];
        for (std::size_t p = 0; p < ta.points.size(); ++p)
            worst = std::max(worst, std::abs(ta.points[p].value -
                                             tb.points[p].value));
    }
    return worst;
}

/**
 * One fuzzed group composition: a job list executed through the
 * model-group path under (target, shards, threads), every slot held
 * to exact equality against the per-config kernel.
 */
void
checkComposition(const PreparedTrace &prepared,
                 const std::vector<ConfigJob> &jobs,
                 const SweepOptions &base, SimdTarget target,
                 unsigned shards, unsigned threads, int round)
{
    SweepOptions opts = base;
    opts.simd = target;
    opts.fusedThreads = shards;
    std::vector<ConfigResult> batched =
        runGroups(prepared, jobs, opts, threads);

    StreamCache per_config_cache(prepared, base);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const ConfigResult expected =
            runConfigJob(jobs[j], per_config_cache);
        EXPECT_EQ(batched[j].mispRate, expected.mispRate)
            << schemeKindName(jobs[j].kind) << " r=" << jobs[j].rowBits
            << " c=" << jobs[j].colBits << " "
            << simdTargetName(target) << " shards=" << shards
            << " round " << round;
        EXPECT_EQ(batched[j].aliasRate, expected.aliasRate);
        EXPECT_EQ(batched[j].harmlessFraction,
                  expected.harmlessFraction);
    }
}

} // namespace

TEST(ModelBatchDifferential, BatchedSweepBitIdenticalToPerConfig)
{
    // The tentpole invariant at sweep granularity: for fuzzed zoo
    // knobs, a batched sweep (one model group stepping every lane)
    // must reproduce the per-config fallback exactly, on every SIMD
    // target, for any lane shard count, with or without outer group
    // parallelism.  >= 100 configurations accumulate across rounds.
    Pcg32 rng(0x300DE1B5ULL, 17);
    std::size_t configs_checked = 0;
    for (int round = 0; round < 6; ++round) {
        const SchemeKind kind = kZooKinds[round & 1];
        MemoryTrace trace =
            fuzzTrace(6100 + round, 6000 + rng.nextBounded(6000));
        PreparedTrace prepared(trace);

        SweepOptions base;
        base.minTotalBits = 5 + rng.nextBounded(2);
        base.maxTotalBits = base.minTotalBits + 2 + rng.nextBounded(2);
        fuzzZooKnobs(base, rng);

        SweepOptions per_config = base;
        per_config.fuseJobs = false;
        const SweepResult serial =
            sweepScheme(prepared, kind, per_config);
        configs_checked += pointCount(serial);

        for (SimdTarget target : supportedSimdTargets()) {
            for (unsigned shards : {2u, 3u, 8u, 0u}) {
                SweepOptions opts = base;
                opts.simd = target;
                opts.fusedThreads = shards;
                opts.threads = (round & 1) ? 2 : 1;
                const SweepResult batched =
                    sweepScheme(prepared, kind, opts);
                expectSurfacesIdentical(serial, batched,
                                        simdTargetName(target));
            }
        }
    }
    EXPECT_GE(configs_checked, 100u);
}

TEST(ModelBatchDifferential, FuzzedGroupCompositionsAgreeWithPerConfig)
{
    // >= 100 fuzzed group compositions through the raw
    // planFusedGroups/runFusedGroup route: mixed tiers, duplicate
    // lanes, fuzzed model geometry, a random dispatch target and
    // shard/chunk shape per composition.  Sorting lanes into
    // entry-width classes, chunked grouping and the shared key blocks
    // must never leak between lanes.
    Pcg32 rng(0xBA7C4ED5ULL, 11);

    std::vector<MemoryTrace> traces;
    std::vector<std::unique_ptr<PreparedTrace>> prepared;
    for (int i = 0; i < 5; ++i) {
        traces.push_back(
            fuzzTrace(6200 + i, 1500 + rng.nextBounded(2000)));
        prepared.push_back(
            std::make_unique<PreparedTrace>(traces.back()));
    }

    const std::vector<SimdTarget> targets = supportedSimdTargets();
    std::size_t compositions = 0;
    for (int round = 0; round < 100; ++round) {
        const SchemeKind kind = kZooKinds[rng.nextBounded(2)];
        const PreparedTrace &t = *prepared[rng.nextBounded(5)];

        SweepOptions opts;
        fuzzZooKnobs(opts, rng);

        std::vector<ConfigJob> jobs;
        const std::size_t count = 3 + rng.nextBounded(6);
        for (std::size_t j = 0; j < count; ++j)
            jobs.push_back(
                fuzzZooJob(kind, 5 + rng.nextBounded(5), rng));

        const SimdTarget target =
            targets[rng.nextBounded(targets.size())];
        const unsigned shards = 1 + rng.nextBounded(8);
        const unsigned threads = 1 + rng.nextBounded(3);
        checkComposition(t, jobs, opts, target, shards, threads,
                         round);
        ++compositions;
    }
    EXPECT_GE(compositions, 100u);
}

TEST(ModelBatchDifferential, BatchedReplayAgreesWithReferenceMirrors)
{
    // Close the triangle: the batched sweep against the naive
    // reference mirrors (verify/reference_model.cc), exact equality on
    // every surface point, for default and non-default model geometry.
    MemoryTrace trace = fuzzTrace(6303, 2500);
    PreparedTrace prepared(trace);

    for (int variant = 0; variant < 2; ++variant) {
        SweepOptions opts;
        opts.minTotalBits = 5;
        opts.maxTotalBits = 7;
        if (variant == 1) {
            opts.tageTagBits = 6;
            opts.tageHistories = {2, 5, 11};
            opts.perceptronTables = 3;
        }

        for (SchemeKind kind : kZooKinds) {
            const SweepResult batched =
                sweepScheme(prepared, kind, opts);
            ASSERT_GT(batched.kernel.modelGroups, 0u);
            for (const SurfaceTier &tier :
                 batched.misprediction.tiers()) {
                for (const SurfacePoint &pt : tier.points) {
                    ConfigJob job{kind, tier.totalBits, pt.rowBits,
                                  tier.totalBits - pt.rowBits};
                    const double reference = referenceMispRate(
                        refConfigFor(job, opts), trace);
                    EXPECT_EQ(pt.value, reference)
                        << schemeKindName(kind) << " r=" << pt.rowBits
                        << " c=" << job.colBits << " variant "
                        << variant;
                }
            }
        }
    }
}

TEST(ModelBatchDifferential, PerceptronKernelTargetsMatchScalar)
{
    // The SIMD kernel in isolation: replayPerceptronBatch on every
    // supported target must leave bit-identical weight banks
    // (gather-slack padding included -- it is read-only by contract)
    // and miss counts against the scalar kernel, for fuzzed lane
    // counts, table counts, per-lane entry widths, weights and
    // outcomes.
    const std::vector<SimdTarget> targets = supportedSimdTargets();
    Pcg32 rng(0x9E2CE974ULL, 7);

    for (int round = 0; round < 40; ++round) {
        const unsigned lanes =
            1 + rng.nextBounded(PerceptronBatch::kMaxLanes);
        const unsigned tables = 2 + rng.nextBounded(7); // 2..8
        const std::size_t n = 64 + rng.nextBounded(512);

        std::vector<unsigned> eb(lanes);
        std::vector<std::vector<std::int8_t>> init(lanes);
        std::vector<std::int32_t> theta(lanes);
        for (unsigned l = 0; l < lanes; ++l) {
            eb[l] = rng.nextBounded(7); // 0..6
            init[l].resize((std::size_t{tables} << eb[l]) +
                           PackedPht::kGatherSlack);
            for (std::size_t b = 0; b < init[l].size(); ++b)
                init[l][b] = static_cast<std::int8_t>(
                    static_cast<int>(rng.nextBounded(128)) - 64);
            const unsigned h = 1 + rng.nextBounded(40);
            theta[l] =
                static_cast<std::int32_t>((193u * h) / 100u + 14);
        }

        // Pre-offset index layout: (t << entryBits_l) + tableIndex at
        // stride kMaxLanes, exactly as the sweep engine fills it.
        std::vector<std::uint32_t> idx(
            n * tables * PerceptronBatch::kMaxLanes, 0);
        std::vector<std::uint8_t> taken(n);
        for (std::size_t i = 0; i < n; ++i) {
            taken[i] = static_cast<std::uint8_t>(rng.nextBounded(2));
            for (unsigned t = 0; t < tables; ++t)
                for (unsigned l = 0; l < lanes; ++l)
                    idx[(i * tables + t) *
                            PerceptronBatch::kMaxLanes +
                        l] = (t << eb[l]) +
                             rng.nextBounded(1u << eb[l]);
        }

        const auto replay_on = [&](SimdTarget target,
                                   std::vector<std::vector<
                                       std::int8_t>> &banks,
                                   std::uint64_t *misses) {
            PerceptronBatch batch;
            batch.lanes = lanes;
            batch.tables = tables;
            for (unsigned l = 0; l < lanes; ++l) {
                banks[l] = init[l];
                batch.weights[l] = banks[l].data();
                batch.theta[l] = theta[l];
            }
            replayPerceptronBatch(target, idx.data(), taken.data(), n,
                                  batch);
            for (unsigned l = 0; l < lanes; ++l)
                misses[l] = batch.misses[l];
        };

        std::vector<std::vector<std::int8_t>> truth_banks(lanes);
        std::uint64_t truth_misses[PerceptronBatch::kMaxLanes] = {};
        replay_on(SimdTarget::Scalar, truth_banks, truth_misses);

        for (SimdTarget target : targets) {
            if (target == SimdTarget::Scalar)
                continue;
            std::vector<std::vector<std::int8_t>> banks(lanes);
            std::uint64_t misses[PerceptronBatch::kMaxLanes] = {};
            replay_on(target, banks, misses);
            for (unsigned l = 0; l < lanes; ++l) {
                EXPECT_EQ(misses[l], truth_misses[l])
                    << simdTargetName(target) << " lane " << l
                    << " lanes=" << lanes << " tables=" << tables
                    << " eb=" << eb[l] << " round " << round;
                EXPECT_EQ(std::memcmp(banks[l].data(),
                                      truth_banks[l].data(),
                                      banks[l].size()),
                          0)
                    << simdTargetName(target) << " lane " << l
                    << " bank diverged, round " << round;
            }
        }
    }
}

TEST(ModelBatchDifferential, SpeculativeEpsilonBoundedAndDeterministic)
{
    // Speculative segments now apply to model groups too.  The zoo's
    // warm-up epsilon is larger than the 2-bit family's (TAGE useful
    // counters and perceptron weights converge more slowly than
    // 2-bit counters -- see EXPERIMENTS.md "Zoo throughput"), so the
    // bound here is looser than test_segment_parallel's 0.02; the
    // determinism contract is identical: the epsilon depends only on
    // (K, warmup), never on shard/worker/target shape.
    MemoryTrace trace = fuzzTrace(6404, 24'000);
    PreparedTrace prepared(trace);

    for (SchemeKind kind : kZooKinds) {
        SweepOptions exact;
        exact.minTotalBits = 6;
        exact.maxTotalBits = 9;
        const SweepResult truth = sweepScheme(prepared, kind, exact);

        SweepOptions spec = exact;
        spec.segments = 4;
        spec.segmentWarmup = 2048;
        const SweepResult approx = sweepScheme(prepared, kind, spec);
        EXPECT_LE(maxPointDelta(truth, approx), 0.05)
            << schemeKindName(kind);

        SweepOptions spec2 = spec;
        spec2.fusedThreads = 3;
        spec2.threads = 2;
        const SweepResult again = sweepScheme(prepared, kind, spec2);
        expectSurfacesIdentical(approx, again, schemeKindName(kind));
    }
}

TEST(ModelBatchDifferential, CoveringWarmupReproducesExactResults)
{
    // A warm-up window covering every segment start replays the full
    // prefix (training, not counting) before counting, so the model
    // state at each boundary is exactly the serial state: speculative
    // mode must be bit-identical to exact mode.  Pins the zoo warm-up
    // replay path itself.
    MemoryTrace trace = fuzzTrace(6505, 12'000);
    PreparedTrace prepared(trace);

    for (SchemeKind kind : kZooKinds) {
        SweepOptions exact;
        exact.minTotalBits = 5;
        exact.maxTotalBits = 8;
        const SweepResult truth = sweepScheme(prepared, kind, exact);

        SweepOptions spec = exact;
        spec.segments = 3;
        spec.segmentWarmup = 1u << 20; // covers any segment start
        const SweepResult approx = sweepScheme(prepared, kind, spec);
        expectSurfacesIdentical(truth, approx,
                                schemeKindName(kind));
    }
}

TEST(ModelBatchDifferential, TelemetryReportsModelGroupShape)
{
    MemoryTrace trace = fuzzTrace(6606, 10'000);
    PreparedTrace prepared(trace);

    SweepOptions opts;
    opts.minTotalBits = 5;
    opts.maxTotalBits = 8;
    opts.fusedThreads = 2;
    opts.segments = 3;
    opts.segmentWarmup = 512;
    const SweepResult r =
        sweepScheme(prepared, SchemeKind::Tage, opts);

    // Zoo groups are model groups, not packed-lane fused groups.
    EXPECT_EQ(r.kernel.fusedGroups, 0u);
    EXPECT_EQ(r.kernel.lanes, 0u);
    EXPECT_EQ(r.kernel.laneBatches, 0u);
    ASSERT_GT(r.kernel.modelGroups, 0u);
    EXPECT_EQ(r.kernel.modelLanes,
              planSweep(SchemeKind::Tage, opts).size());
    EXPECT_GT(r.kernel.modelBatches, 0u);
    EXPECT_GT(r.kernel.blocksReplayed, 0u);
    EXPECT_EQ(r.kernel.segmentsPerGroup(), 3.0);
    EXPECT_GE(r.kernel.shardsPerGroup(), 1.0);
    EXPECT_GE(r.kernel.shardTasks, r.kernel.segments);
    EXPECT_LE(r.kernel.shardTasks,
              r.kernel.segments * opts.fusedThreads);
    EXPECT_GT(r.kernel.warmupBranches, 0u);
    EXPECT_GT(r.kernel.modelLanesPerGroup(), 0.0);
    const double util = r.kernel.workerUtilization();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);

    // Exact serial zoo sweeps keep the degenerate shape.
    SweepOptions serial;
    serial.minTotalBits = 5;
    serial.maxTotalBits = 8;
    const SweepResult s =
        sweepScheme(prepared, SchemeKind::Perceptron, serial);
    ASSERT_GT(s.kernel.modelGroups, 0u);
    EXPECT_EQ(s.kernel.segmentsPerGroup(), 1.0);
    EXPECT_EQ(s.kernel.warmupBranches, 0u);
}

TEST(ModelBatchSlow, CompositionCampaign)
{
    if (std::getenv("BPSIM_SLOW_TESTS") == nullptr) {
        GTEST_SKIP() << "set BPSIM_SLOW_TESTS=1 to run the long "
                        "campaign (ctest -L zoo)";
    }

    // The long campaign: hundreds of fuzzed group compositions with
    // longer traces, EVERY supported target per composition, and a
    // naive reference mirror check of one slot per round so a bug
    // that fooled both fast paths still surfaces.
    Pcg32 rng(0x51077CA3ULL, 29);

    std::vector<MemoryTrace> traces;
    std::vector<std::unique_ptr<PreparedTrace>> prepared;
    for (int i = 0; i < 8; ++i) {
        traces.push_back(
            fuzzTrace(6700 + i, 3000 + rng.nextBounded(5000)));
        prepared.push_back(
            std::make_unique<PreparedTrace>(traces.back()));
    }

    const std::vector<SimdTarget> targets = supportedSimdTargets();
    for (int round = 0; round < 200; ++round) {
        const SchemeKind kind = kZooKinds[rng.nextBounded(2)];
        const std::size_t trace_idx = rng.nextBounded(8);
        const PreparedTrace &t = *prepared[trace_idx];

        SweepOptions opts;
        fuzzZooKnobs(opts, rng);

        std::vector<ConfigJob> jobs;
        const std::size_t count = 3 + rng.nextBounded(8);
        for (std::size_t j = 0; j < count; ++j)
            jobs.push_back(
                fuzzZooJob(kind, 5 + rng.nextBounded(6), rng));

        const unsigned shards = 1 + rng.nextBounded(8);
        const unsigned threads = 1 + rng.nextBounded(3);
        for (SimdTarget target : targets)
            checkComposition(t, jobs, opts, target, shards, threads,
                             round);

        const double reference = referenceMispRate(
            refConfigFor(jobs[0], opts), traces[trace_idx]);
        StreamCache cache(t, opts);
        EXPECT_EQ(runConfigJob(jobs[0], cache).mispRate, reference)
            << schemeKindName(kind) << " round " << round;
    }
}

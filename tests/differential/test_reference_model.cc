/**
 * @file
 * Unit tests for the naive reference model itself: its independently
 * rebuilt constants match the engine's, its first predictions follow
 * the weakly-taken reset convention, its config validation rejects
 * malformed shapes, and -- the core property -- it agrees with the
 * production predictors on small deterministic traces for every
 * scheme family.
 */

#include <gtest/gtest.h>

#include "common/history_register.hh"
#include "predictor/factory.hh"
#include "sim/sweep.hh"
#include "trace/memory_trace.hh"
#include "verify/differential.hh"
#include "verify/reference_model.hh"

using namespace bpsim;
using namespace bpsim::verify;

TEST(ReferenceModel, C3ffPrefixMatchesEngineAtEveryWidth)
{
    // The reference rebuilds the displacement pattern from its bit
    // string; the engine builds it arithmetically.  They must agree
    // bit for bit at every legal register width.
    for (unsigned width = 0; width <= 64; ++width)
        EXPECT_EQ(refC3ffPrefix(width), c3ffPrefix(width))
            << "width " << width;
}

TEST(ReferenceModel, C3ffPrefixSpotValues)
{
    EXPECT_EQ(refC3ffPrefix(0), 0u);
    EXPECT_EQ(refC3ffPrefix(4), 0xCu);
    EXPECT_EQ(refC3ffPrefix(16), 0xC3FFu);
    EXPECT_EQ(refC3ffPrefix(20), (std::uint64_t{0xC3FF} << 4) | 0xC);
    EXPECT_EQ(refC3ffPrefix(32), 0xC3FFC3FFu);
}

TEST(ReferenceModel, FreshCountersPredictTakenForEveryScheme)
{
    // Two-bit counters reset weakly taken, so the very first
    // prediction of any two-level scheme is "taken".
    for (RefScheme scheme :
         {RefScheme::AddressIndexed, RefScheme::GAg, RefScheme::GAs,
          RefScheme::Gshare, RefScheme::Path, RefScheme::PAsPerfect,
          RefScheme::PAsFinite, RefScheme::SAs, RefScheme::BiMode,
          RefScheme::Gskew}) {
        RefConfig cfg;
        cfg.scheme = scheme;
        cfg.rowBits = 4;
        cfg.colBits = scheme == RefScheme::GAg ? 0 : 2;
        auto ref = makeReferencePredictor(cfg);
        EXPECT_TRUE(
            ref->predictAndTrain(RefBranch{0x1000, 0x2000, false}))
            << refSchemeName(scheme);
    }
}

TEST(ReferenceModel, CounterSaturatesAfterTwoNotTakenOutcomes)
{
    // addr:0 is a single counter: weakly taken (2) -> 1 -> 0, so the
    // third encounter predicts not-taken.
    RefConfig cfg;
    cfg.scheme = RefScheme::AddressIndexed;
    cfg.rowBits = 0;
    cfg.colBits = 0;
    auto ref = makeReferencePredictor(cfg);
    RefBranch branch{0x1000, 0x2000, false};
    EXPECT_TRUE(ref->predictAndTrain(branch));  // 2 -> 1
    EXPECT_FALSE(ref->predictAndTrain(branch)); // 1 -> 0
    EXPECT_FALSE(ref->predictAndTrain(branch)); // saturated
}

TEST(ReferenceModel, AgreeNeverMispredictsASteadyBranch)
{
    // The bias bit captures the first outcome and fresh counters lean
    // "agree", so a branch that never changes direction is always
    // predicted correctly -- the design's whole point.
    RefConfig cfg;
    cfg.scheme = RefScheme::Agree;
    cfg.indexBits = 4;
    cfg.historyBits = 4;
    auto ref = makeReferencePredictor(cfg);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(
            ref->predictAndTrain(RefBranch{0x1000, 0x2000, false}))
            << "iteration " << i;
}

TEST(ReferenceModel, StateDumpNamesTheScheme)
{
    RefConfig cfg;
    cfg.scheme = RefScheme::Gshare;
    cfg.rowBits = 3;
    cfg.colBits = 1;
    auto ref = makeReferencePredictor(cfg);
    ref->predictAndTrain(RefBranch{0x1000, 0x2000, true});
    std::string dump = ref->stateDump();
    EXPECT_NE(dump.find("gshare"), std::string::npos) << dump;
    EXPECT_NE(dump.find("pht="), std::string::npos) << dump;
}

TEST(ReferenceModel, RejectsMalformedConfigs)
{
    RefConfig tournament;
    tournament.scheme = RefScheme::Tournament;
    EXPECT_THROW(makeReferencePredictor(tournament),
                 std::invalid_argument);

    RefConfig gskew;
    gskew.scheme = RefScheme::Gskew;
    gskew.indexBits = 0;
    EXPECT_THROW(makeReferencePredictor(gskew), std::invalid_argument);

    RefConfig finite;
    finite.scheme = RefScheme::PAsFinite;
    finite.bhtEntries = 8;
    finite.bhtAssoc = 3;
    EXPECT_THROW(makeReferencePredictor(finite), std::invalid_argument);
}

TEST(ReferenceModel, EngineSpecSpellings)
{
    RefConfig cfg;
    cfg.scheme = RefScheme::Gshare;
    cfg.rowBits = 5;
    cfg.colBits = 3;
    EXPECT_EQ(engineSpec(cfg), "gshare:5:3");

    cfg.scheme = RefScheme::Path;
    cfg.pathBitsPerTarget = 3;
    EXPECT_EQ(engineSpec(cfg), "path:5:3:3");

    cfg.scheme = RefScheme::PAsFinite;
    cfg.bhtEntries = 64;
    cfg.bhtAssoc = 4;
    EXPECT_EQ(engineSpec(cfg), "PAs:5:3:64:4");

    cfg.bhtResetPolicy = RefResetPolicy::Hold;
    EXPECT_THROW(engineSpec(cfg), std::invalid_argument);

    RefConfig tournament;
    tournament.scheme = RefScheme::Tournament;
    tournament.choiceBits = 6;
    RefConfig leaf;
    leaf.scheme = RefScheme::AddressIndexed;
    leaf.rowBits = 0;
    leaf.colBits = 4;
    tournament.components.push_back(leaf);
    leaf.scheme = RefScheme::GAs;
    leaf.rowBits = 3;
    leaf.colBits = 2;
    tournament.components.push_back(leaf);
    EXPECT_EQ(engineSpec(tournament),
              "tournament(addr:4,GAs:3:2):6");
}

namespace {

/** A small deterministic trace mixing loop-like and alternating
 *  sites, with a couple of non-conditional records to skip. */
MemoryTrace
handTrace()
{
    MemoryTrace trace("hand");
    unsigned phase = 0;
    for (int i = 0; i < 400; ++i) {
        if (i % 17 == 5) {
            BranchRecord call;
            call.pc = 0x9000;
            call.target = 0x9100;
            call.type = BranchType::Call;
            call.taken = true;
            trace.append(call);
        }
        BranchRecord rec;
        switch (i % 3) {
          case 0: // 3-iteration loop backedge at one pc
            rec.pc = 0x1000;
            rec.target = 0x0FF0;
            rec.taken = (phase++ % 3) != 2;
            break;
          case 1: // alternating branch aliasing into low bits
            rec.pc = 0x1040;
            rec.target = 0x1100;
            rec.taken = (i / 3) % 2 == 0;
            break;
          default: // heavily biased branch
            rec.pc = 0x2000;
            rec.target = 0x2100;
            rec.taken = i % 21 != 0;
            break;
        }
        rec.type = BranchType::Conditional;
        trace.append(rec);
    }
    return trace;
}

} // namespace

TEST(ReferenceModel, AgreesWithEngineOnHandTraceForEveryScheme)
{
    MemoryTrace trace = handTrace();

    std::vector<RefConfig> configs;
    for (RefScheme scheme :
         {RefScheme::AddressIndexed, RefScheme::GAg, RefScheme::GAs,
          RefScheme::Gshare, RefScheme::Path, RefScheme::PAsPerfect,
          RefScheme::PAsFinite, RefScheme::SAs, RefScheme::Agree,
          RefScheme::BiMode, RefScheme::Gskew}) {
        RefConfig cfg;
        cfg.scheme = scheme;
        cfg.rowBits = scheme == RefScheme::AddressIndexed ? 0 : 4;
        cfg.colBits = scheme == RefScheme::GAg ? 0 : 3;
        cfg.bhtEntries = 8;
        cfg.bhtAssoc = 2;
        cfg.setBits = 2;
        cfg.indexBits = 5;
        cfg.historyBits = 6;
        cfg.choiceBits = 4;
        configs.push_back(cfg);
    }
    RefConfig tournament;
    tournament.scheme = RefScheme::Tournament;
    tournament.choiceBits = 4;
    tournament.components.assign(2, RefConfig{});
    tournament.components[0].scheme = RefScheme::AddressIndexed;
    tournament.components[0].rowBits = 0;
    tournament.components[0].colBits = 4;
    tournament.components[1].scheme = RefScheme::Gshare;
    tournament.components[1].rowBits = 4;
    tournament.components[1].colBits = 2;
    configs.push_back(tournament);

    for (const RefConfig &cfg : configs) {
        auto mismatch = diffPredictors(cfg, trace);
        EXPECT_FALSE(mismatch.has_value())
            << (mismatch ? mismatch->describe() : "");
    }
}

TEST(ReferenceModel, DivergenceDetectionIsNotVacuous)
{
    // Negative control for the whole harness: pit the reference at a
    // 2-bit history against the engine at 6 bits.  If lockstep
    // comparison could not see THIS difference, zero-mismatch fuzz
    // results would mean nothing.
    MemoryTrace trace = handTrace();
    RefConfig small;
    small.scheme = RefScheme::GAg;
    small.rowBits = 2;
    small.colBits = 0;
    auto reference = makeReferencePredictor(small);
    auto engine = makePredictor("GAg:6", false);

    bool diverged = false;
    for (std::size_t i = 0; i < trace.size() && !diverged; ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        bool engine_prediction = engine->onBranch(rec);
        bool reference_prediction = reference->predictAndTrain(
            RefBranch{rec.pc, rec.target, rec.taken});
        diverged = engine_prediction != reference_prediction;
    }
    EXPECT_TRUE(diverged);
}

TEST(ReferenceModel, ReferenceMispRateMatchesSweepKernelOnHandTrace)
{
    MemoryTrace trace = handTrace();
    PreparedTrace prepared(trace);

    struct Case
    {
        RefScheme ref;
        SchemeKind kind;
        unsigned rowBits;
        unsigned colBits;
    };
    const Case cases[] = {
        {RefScheme::AddressIndexed, SchemeKind::AddressIndexed, 0, 5},
        {RefScheme::GAg, SchemeKind::GAg, 6, 0},
        {RefScheme::GAs, SchemeKind::GAs, 4, 3},
        {RefScheme::Gshare, SchemeKind::Gshare, 5, 2},
        {RefScheme::Path, SchemeKind::Path, 5, 2},
        {RefScheme::PAsPerfect, SchemeKind::PAsPerfect, 4, 3},
        {RefScheme::PAsFinite, SchemeKind::PAsFinite, 4, 3},
    };
    for (const Case &c : cases) {
        RefConfig cfg;
        cfg.scheme = c.ref;
        cfg.rowBits = c.rowBits;
        cfg.colBits = c.colBits;
        cfg.bhtEntries = 8;
        cfg.bhtAssoc = 2;

        SweepOptions opts;
        opts.trackAliasing = false;
        opts.bhtEntries = cfg.bhtEntries;
        opts.bhtAssoc = cfg.bhtAssoc;
        opts.threads = 1;
        ConfigResult result = simulateConfig(prepared, c.kind,
                                             c.rowBits, c.colBits,
                                             opts);
        EXPECT_EQ(result.mispRate, referenceMispRate(cfg, trace))
            << schemeKindName(c.kind);
    }
}

/**
 * @file
 * The tier-1 differential fuzzing campaign: several hundred seeded
 * (trace, configuration) pairs spanning every scheme family, each
 * executed through both the production engine and the naive reference
 * model, with the sweep fast path cross-checked on the core schemes.
 * Any divergence fails with a first-divergence report including the
 * full reference state.
 *
 * The long-running campaign lives in test_differential_slow.cc behind
 * the `slow` ctest label.
 */

#include <gtest/gtest.h>

#include "verify/differential.hh"

using namespace bpsim::verify;

TEST(DifferentialFuzz, SmokeCampaignAllSchemesZeroMismatches)
{
    // The acceptance bar: >= 200 seeded pairs across every scheme in
    // the tier-1 budget, zero engine/reference mismatches.
    FuzzOptions options;
    options.seed = 0x5EC4E57;
    options.pairs = 240;
    options.minBranches = 300;
    options.maxBranches = 1500;
    options.includeVariants = true;
    options.crossCheckFastPath = true;

    FuzzReport report = runDifferentialFuzzer(options);
    EXPECT_EQ(report.pairsRun, options.pairs);
    // All 14 families: the 9 core SchemeKinds (the paper's seven plus
    // TAGE and perceptron) plus SAs, agree, bi-mode, gskew and
    // tournament.
    EXPECT_EQ(report.schemesCovered.size(), 14u) << report.summary();
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(DifferentialFuzz, CoreSchemesOnlyCampaign)
{
    // A second seed restricted to the core SchemeKinds (the paper's
    // seven plus the zoo), so a regression in a variant predictor
    // cannot mask one in the core.
    FuzzOptions options;
    options.seed = 0xA11A5;
    options.pairs = 45;
    options.minBranches = 300;
    options.maxBranches = 1200;
    options.includeVariants = false;

    FuzzReport report = runDifferentialFuzzer(options);
    EXPECT_EQ(report.pairsRun, options.pairs);
    EXPECT_EQ(report.schemesCovered.size(), 9u) << report.summary();
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(DifferentialFuzz, CampaignsAreSeedDeterministic)
{
    FuzzOptions options;
    options.seed = 42;
    options.pairs = 12;
    options.crossCheckFastPath = false;

    FuzzReport a = runDifferentialFuzzer(options);
    FuzzReport b = runDifferentialFuzzer(options);
    EXPECT_EQ(a.pairsRun, b.pairsRun);
    EXPECT_EQ(a.schemesCovered, b.schemesCovered);
    EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

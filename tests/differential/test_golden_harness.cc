/**
 * @file
 * Tests for the golden-file recorder, writer, loader and
 * tolerance-aware comparator behind the bench drivers'
 * golden=emit / golden=check modes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "stats/surface.hh"
#include "verify/golden.hh"

using namespace bpsim;
using namespace bpsim::verify;

namespace {

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

} // namespace

TEST(GoldenHarness, GoldenCloseCombinesAbsoluteAndRelative)
{
    EXPECT_TRUE(goldenClose(0.0, 0.0, 1e-9));
    EXPECT_TRUE(goldenClose(0.1234, 0.1234, 1e-9));
    // Near zero the absolute term dominates.
    EXPECT_TRUE(goldenClose(0.0, 5e-10, 1e-9));
    EXPECT_FALSE(goldenClose(0.0, 5e-9, 1e-9));
    // For large values the relative term keeps the check scale-free.
    EXPECT_TRUE(goldenClose(1e12, 1e12 * (1 + 1e-10), 1e-9));
    EXPECT_FALSE(goldenClose(1e12, 1e12 * 1.01, 1e-9));
    // NaN only matches NaN.
    double nan = std::nan("");
    EXPECT_TRUE(goldenClose(nan, nan, 1e-9));
    EXPECT_FALSE(goldenClose(nan, 0.0, 1e-9));
}

TEST(GoldenHarness, WriteLoadRoundTripsExactDoubles)
{
    GoldenRecorder recorder;
    recorder.record("fig/x", 0.123456789012345678);
    recorder.record("fig/tiny", 1e-300);
    recorder.record("fig/negative", -42.5);
    recorder.record("fig/zero", 0.0);

    std::string path = tempPath("roundtrip.golden");
    recorder.writeFile(path);

    auto loaded = GoldenRecorder::loadFile(path);
    ASSERT_EQ(loaded.size(), 4u);
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(loaded.at("fig/x"), 0.123456789012345678);
    EXPECT_EQ(loaded.at("fig/tiny"), 1e-300);
    EXPECT_EQ(loaded.at("fig/negative"), -42.5);
    EXPECT_EQ(loaded.at("fig/zero"), 0.0);

    // A run that recorded the same values compares clean.
    EXPECT_TRUE(recorder.compareTo(path, 1e-9).empty());
}

TEST(GoldenHarness, ComparatorReportsDriftMissingAndExtraKeys)
{
    GoldenRecorder golden;
    golden.record("a", 1.0);
    golden.record("b", 2.0);
    golden.record("gone", 3.0);
    std::string path = tempPath("problems.golden");
    golden.writeFile(path);

    GoldenRecorder actual;
    actual.record("a", 1.0);       // matches
    actual.record("b", 2.5);       // drifted
    actual.record("new", 4.0);     // not in the file

    auto problems = actual.compareTo(path, 1e-9);
    ASSERT_EQ(problems.size(), 3u);
    bool saw_drift = false, saw_extra = false, saw_missing = false;
    for (const std::string &p : problems) {
        if (p.find("value drift: b") != std::string::npos)
            saw_drift = true;
        if (p.find("extra key") != std::string::npos &&
            p.find("new") != std::string::npos)
            saw_extra = true;
        if (p.find("missing key") != std::string::npos &&
            p.find("gone") != std::string::npos)
            saw_missing = true;
    }
    EXPECT_TRUE(saw_drift);
    EXPECT_TRUE(saw_extra);
    EXPECT_TRUE(saw_missing);

    // Within a loose tolerance the drifted value passes; the key
    // problems remain.
    auto loose = actual.compareTo(path, 1.0);
    EXPECT_EQ(loose.size(), 2u);
}

TEST(GoldenHarness, DuplicateKeysAreADriverBug)
{
    GoldenRecorder recorder;
    recorder.record("k", 1.0);
    EXPECT_THROW(recorder.record("k", 2.0), std::logic_error);
}

TEST(GoldenHarness, KeysAreWhitespaceSanitized)
{
    GoldenRecorder recorder;
    recorder.record("profile with spaces/rate", 0.5);
    std::string path = tempPath("sanitize.golden");
    recorder.writeFile(path);
    auto loaded = GoldenRecorder::loadFile(path);
    EXPECT_EQ(loaded.count("profile_with_spaces/rate"), 1u);
}

TEST(GoldenHarness, SurfacePointsRecordUnderStructuredKeys)
{
    Surface surface("test");
    surface.add(8, 3, 5, 0.25);
    surface.add(8, 4, 4, 0.125);
    surface.add(9, 9, 0, 0.5);

    GoldenRecorder recorder;
    recorder.recordSurface("fig", surface);
    const auto &values = recorder.values();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values.at("fig/t8/r3c5"), 0.25);
    EXPECT_EQ(values.at("fig/t8/r4c4"), 0.125);
    EXPECT_EQ(values.at("fig/t9/r9c0"), 0.5);
}

TEST(GoldenHarness, LoadRejectsMissingAndMalformedFiles)
{
    EXPECT_THROW(GoldenRecorder::loadFile(tempPath("nonexistent")),
                 std::runtime_error);

    std::string path = tempPath("malformed.golden");
    {
        std::ofstream out(path);
        out << "# comment is fine\n";
        out << "key_without_value\n";
    }
    EXPECT_THROW(GoldenRecorder::loadFile(path), std::runtime_error);
}

TEST(GoldenHarness, CommentsAndBlankLinesAreIgnored)
{
    std::string path = tempPath("comments.golden");
    {
        std::ofstream out(path);
        out << "# header\n\nkey 1.5\n# trailing\n";
    }
    auto loaded = GoldenRecorder::loadFile(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.at("key"), 1.5);
}

/**
 * @file
 * The long differential fuzzing campaign: thousands of pairs with
 * longer traces.  Opt-in twice over -- it carries the `slow` ctest
 * label and additionally skips unless BPSIM_SLOW_TESTS is set, so the
 * tier-1 run (plain `ctest`) passes through it in milliseconds:
 *
 *     BPSIM_SLOW_TESTS=1 ctest -L slow --output-on-failure
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "verify/differential.hh"

using namespace bpsim::verify;

TEST(DifferentialFuzzSlow, LongCampaign)
{
    if (std::getenv("BPSIM_SLOW_TESTS") == nullptr) {
        GTEST_SKIP() << "set BPSIM_SLOW_TESTS=1 to run the long "
                        "campaign (ctest -L slow)";
    }

    FuzzOptions options;
    options.seed = 0xD1FFD1FF;
    options.pairs = 2400;
    options.minBranches = 1000;
    options.maxBranches = 8000;
    options.includeVariants = true;
    options.crossCheckFastPath = true;

    FuzzReport report = runDifferentialFuzzer(options);
    EXPECT_EQ(report.pairsRun, options.pairs);
    EXPECT_EQ(report.schemesCovered.size(), 14u) << report.summary();
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(DifferentialFuzzSlow, ZooCampaign)
{
    if (std::getenv("BPSIM_SLOW_TESTS") == nullptr) {
        GTEST_SKIP() << "set BPSIM_SLOW_TESTS=1 to run the long "
                        "campaign (ctest -L slow)";
    }

    // A dedicated budget for the modern-predictor zoo: every pair is
    // a TAGE or perceptron configuration, so the multi-table code sees
    // as many seeds alone as the LongCampaign spreads over 14 schemes.
    FuzzOptions options;
    options.seed = 0x2A6EC0DE;
    options.pairs = 2400;
    options.minBranches = 1000;
    options.maxBranches = 8000;
    options.crossCheckFastPath = true;
    options.onlySchemes = {RefScheme::Tage, RefScheme::Perceptron};

    FuzzReport report = runDifferentialFuzzer(options);
    EXPECT_EQ(report.pairsRun, options.pairs);
    EXPECT_EQ(report.schemesCovered.size(), 2u) << report.summary();
    EXPECT_TRUE(report.clean()) << report.summary();
}

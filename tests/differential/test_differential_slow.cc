/**
 * @file
 * The long differential fuzzing campaign: thousands of pairs with
 * longer traces.  Opt-in twice over -- it carries the `slow` ctest
 * label and additionally skips unless BPSIM_SLOW_TESTS is set, so the
 * tier-1 run (plain `ctest`) passes through it in milliseconds:
 *
 *     BPSIM_SLOW_TESTS=1 ctest -L slow --output-on-failure
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "verify/differential.hh"

using namespace bpsim::verify;

TEST(DifferentialFuzzSlow, LongCampaign)
{
    if (std::getenv("BPSIM_SLOW_TESTS") == nullptr) {
        GTEST_SKIP() << "set BPSIM_SLOW_TESTS=1 to run the long "
                        "campaign (ctest -L slow)";
    }

    FuzzOptions options;
    options.seed = 0xD1FFD1FF;
    options.pairs = 2400;
    options.minBranches = 1000;
    options.maxBranches = 8000;
    options.includeVariants = true;
    options.crossCheckFastPath = true;

    FuzzReport report = runDifferentialFuzzer(options);
    EXPECT_EQ(report.pairsRun, options.pairs);
    EXPECT_EQ(report.schemesCovered.size(), 12u) << report.summary();
    EXPECT_TRUE(report.clean()) << report.summary();
}

/**
 * @file
 * Differential verification of the segment-parallel fused replay
 * (sweep.cc): lane sharding must be bit-identical to the serial
 * engine for any shard count on every SIMD target, speculative
 * segment replay must be deterministic with a bounded, auditable
 * epsilon against exact mode, and the exact path must be untouched by
 * every new execution knob.
 *
 * The suite name is load-bearing: the tsan preset runs
 * "ThreadPool|Sweep|Experiment|ServiceStress|SegmentParallel", so the
 * nested groups-outer/shards-inner pool dispatch here is replayed
 * under the race detector.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/random.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

constexpr SchemeKind kAllKinds[] = {
    SchemeKind::AddressIndexed, SchemeKind::GAg,
    SchemeKind::GAs,            SchemeKind::Gshare,
    SchemeKind::Path,           SchemeKind::PAsPerfect,
    SchemeKind::PAsFinite,
};

MemoryTrace
fuzzTrace(std::uint64_t seed, std::uint64_t conditionals)
{
    WorkloadParams p;
    p.name = "segpar-diff-" + std::to_string(seed);
    p.seed = seed;
    p.staticBranches = 90;
    p.functionCount = 9;
    p.targetConditionals = conditionals;
    return generateTrace(p);
}

/** Exact equality on every surface point (bit-identity contract). */
void
expectSurfacesIdentical(const SweepResult &a, const SweepResult &b,
                        const char *what)
{
    ASSERT_EQ(a.misprediction.tiers().size(),
              b.misprediction.tiers().size())
        << what;
    for (std::size_t t = 0; t < a.misprediction.tiers().size(); ++t) {
        const SurfaceTier &ta = a.misprediction.tiers()[t];
        const SurfaceTier &tb = b.misprediction.tiers()[t];
        ASSERT_EQ(ta.points.size(), tb.points.size()) << what;
        for (std::size_t p = 0; p < ta.points.size(); ++p) {
            ASSERT_EQ(ta.points[p].rowBits, tb.points[p].rowBits);
            ASSERT_EQ(ta.points[p].value, tb.points[p].value)
                << what << ": tier " << ta.totalBits << " row "
                << ta.points[p].rowBits;
        }
    }
    ASSERT_EQ(a.bhtMissRate, b.bhtMissRate) << what;
}

std::size_t
pointCount(const SweepResult &r)
{
    std::size_t n = 0;
    for (const SurfaceTier &tier : r.misprediction.tiers())
        n += tier.points.size();
    return n;
}

/** Largest per-point |delta| between two sweeps of the same plan. */
double
maxPointDelta(const SweepResult &a, const SweepResult &b)
{
    double worst = 0.0;
    for (std::size_t t = 0; t < a.misprediction.tiers().size(); ++t) {
        const SurfaceTier &ta = a.misprediction.tiers()[t];
        const SurfaceTier &tb = b.misprediction.tiers()[t];
        for (std::size_t p = 0; p < ta.points.size(); ++p)
            worst = std::max(worst, std::abs(ta.points[p].value -
                                             tb.points[p].value));
    }
    return worst;
}

} // namespace

TEST(SegmentParallel, LaneShardingBitIdenticalAcrossFuzzedConfigs)
{
    // The tentpole invariant: sharding the lane dimension never
    // changes any result, for any shard count, on any SIMD target,
    // with or without outer group parallelism.  >= 100 fuzzed
    // configurations accumulate across the rounds.
    Pcg32 rng(0x5E63B0B5ULL, 17);
    std::size_t configs_checked = 0;
    for (int round = 0; round < 8; ++round) {
        const SchemeKind kind = kAllKinds[rng.nextBounded(7)];
        MemoryTrace trace =
            fuzzTrace(4200 + round, 8000 + rng.nextBounded(8000));
        PreparedTrace prepared(trace);

        SweepOptions base;
        base.trackAliasing = false;
        base.minTotalBits = 4 + rng.nextBounded(2);
        base.maxTotalBits = base.minTotalBits + 3 + rng.nextBounded(3);
        base.bhtEntries = 32u << rng.nextBounded(3);
        base.bhtAssoc = rng.nextBounded(2) ? 4 : 2;
        base.pathBitsPerTarget = 1 + rng.nextBounded(4);
        base.fusedThreads = 1;

        const SweepResult serial = sweepScheme(prepared, kind, base);
        configs_checked += pointCount(serial);

        for (SimdTarget target : supportedSimdTargets()) {
            for (unsigned shards : {2u, 3u, 8u, 0u}) {
                SweepOptions opts = base;
                opts.simd = target;
                opts.fusedThreads = shards;
                // Mix in outer group parallelism on some rounds: the
                // nested groups x shards dispatch is the production
                // shape.
                opts.threads = (round & 1) ? 2 : 1;
                const SweepResult sharded =
                    sweepScheme(prepared, kind, opts);
                expectSurfacesIdentical(serial, sharded,
                                        simdTargetName(target));
            }
        }
    }
    EXPECT_GE(configs_checked, 100u);
}

TEST(SegmentParallel, SpeculativeEpsilonBoundedAndDeterministic)
{
    // Speculative segments trade a bounded error for parallelism: the
    // 2-bit counters converge within a few updates (DESIGN.md section
    // "Segment-parallel replay"), so a 512-branch warm-up window keeps
    // the per-point delta against exact mode small.  The delta is the
    // auditable epsilon; determinism means it never depends on shard
    // or worker counts.
    MemoryTrace trace = fuzzTrace(77, 24'000);
    PreparedTrace prepared(trace);

    SweepOptions exact;
    exact.trackAliasing = false;
    exact.minTotalBits = 4;
    exact.maxTotalBits = 8;

    for (SchemeKind kind :
         {SchemeKind::Gshare, SchemeKind::GAs, SchemeKind::PAsPerfect}) {
        const SweepResult truth = sweepScheme(prepared, kind, exact);

        SweepOptions spec = exact;
        spec.segments = 4;
        spec.segmentWarmup = 512;
        const SweepResult approx = sweepScheme(prepared, kind, spec);
        EXPECT_LE(maxPointDelta(truth, approx), 0.02)
            << schemeKindName(kind);

        // Same K, different shard/worker shape: bit-identical to the
        // first speculative run -- the epsilon is a property of
        // (K, warmup), not of the execution.
        SweepOptions spec2 = spec;
        spec2.fusedThreads = 3;
        spec2.threads = 2;
        const SweepResult again = sweepScheme(prepared, kind, spec2);
        expectSurfacesIdentical(approx, again, schemeKindName(kind));
    }
}

TEST(SegmentParallel, WarmupCoveringTheTraceReproducesExactResults)
{
    // With a warm-up window at least as long as any segment's start
    // offset, every segment replays the full prefix (uncounted) before
    // counting -- the counter state at each boundary is then exactly
    // the serial state, so speculative mode must be bit-identical to
    // exact mode.  Pins that the warm-up replay path itself is sound.
    MemoryTrace trace = fuzzTrace(88, 12'000);
    PreparedTrace prepared(trace);

    SweepOptions exact;
    exact.trackAliasing = false;
    exact.minTotalBits = 4;
    exact.maxTotalBits = 7;
    const SweepResult truth =
        sweepScheme(prepared, SchemeKind::GAs, exact);

    SweepOptions spec = exact;
    spec.segments = 3;
    spec.segmentWarmup = 1u << 20; // covers any segment start
    const SweepResult approx =
        sweepScheme(prepared, SchemeKind::GAs, spec);
    expectSurfacesIdentical(truth, approx, "covering warm-up");
}

TEST(SegmentParallel, ExactModeUntouchedByKnobDefaults)
{
    // segments=0 (defer, no env) and segments=1 (explicit exact) must
    // both take the historical exact path.
    ::unsetenv("BPSIM_SEGMENTS");
    MemoryTrace trace = fuzzTrace(99, 10'000);
    PreparedTrace prepared(trace);

    SweepOptions defaults;
    defaults.trackAliasing = false;
    defaults.minTotalBits = 4;
    defaults.maxTotalBits = 7;
    ASSERT_EQ(resolveSegments(defaults), 1u);

    SweepOptions explicit_exact = defaults;
    explicit_exact.segments = 1;
    expectSurfacesIdentical(
        sweepScheme(prepared, SchemeKind::Gshare, defaults),
        sweepScheme(prepared, SchemeKind::Gshare, explicit_exact),
        "explicit segments=1");
}

TEST(SegmentParallel, EnvOverrideResolvesAndExplicitWins)
{
    const char *prev = std::getenv("BPSIM_SEGMENTS");
    const std::string saved = prev ? prev : "";

    SweepOptions opts;
    ::setenv("BPSIM_SEGMENTS", "4", 1);
    EXPECT_EQ(resolveSegments(opts), 4u);

    // An explicit option beats the environment.
    opts.segments = 2;
    EXPECT_EQ(resolveSegments(opts), 2u);
    opts.segments = 0;

    // Malformed or out-of-range values warn and fall back to exact.
    for (const char *bad : {"zebra", "0", "100", "4x", "-2", ""}) {
        ::setenv("BPSIM_SEGMENTS", bad, 1);
        EXPECT_EQ(resolveSegments(opts), 1u) << "'" << bad << "'";
    }

    ::setenv("BPSIM_SEGMENTS", "64", 1);
    EXPECT_EQ(resolveSegments(opts), 64u);

    // Explicit requests clamp to the documented ceiling.
    opts.segments = 1000;
    EXPECT_EQ(resolveSegments(opts), SweepOptions::kMaxSegments);

    if (prev)
        ::setenv("BPSIM_SEGMENTS", saved.c_str(), 1);
    else
        ::unsetenv("BPSIM_SEGMENTS");
}

TEST(SegmentParallel, TelemetryReportsSegmentAndShardShape)
{
    MemoryTrace trace = fuzzTrace(111, 10'000);
    PreparedTrace prepared(trace);

    SweepOptions opts;
    opts.trackAliasing = false;
    opts.minTotalBits = 4;
    opts.maxTotalBits = 7;
    opts.fusedThreads = 2;
    opts.segments = 3;
    opts.segmentWarmup = 512;
    const SweepResult r =
        sweepScheme(prepared, SchemeKind::GAs, opts);

    ASSERT_GT(r.kernel.fusedGroups, 0u);
    EXPECT_EQ(r.kernel.segmentsPerGroup(), 3.0);
    // GAg-degenerate groups have a single lane, so shards clamp to
    // the lane count; every group still reports at least one shard.
    EXPECT_GE(r.kernel.shardsPerGroup(), 1.0);
    // Per group, tasks = shards x segments; summed over groups that
    // bounds the total by the segment sum on one side and the
    // fusedThreads-scaled sum on the other.
    EXPECT_GE(r.kernel.shardTasks, r.kernel.segments);
    EXPECT_LE(r.kernel.shardTasks,
              r.kernel.segments * opts.fusedThreads);
    // Two speculative segments per group warm up, each over the full
    // configured window (the trace is long enough).
    EXPECT_GT(r.kernel.warmupBranches, 0u);
    EXPECT_GE(r.kernel.shardWorkers, 2u);
    EXPECT_GT(r.kernel.busySeconds, 0.0);
    EXPECT_GT(r.kernel.spanSeconds, 0.0);
    const double util = r.kernel.workerUtilization();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);

    // Exact serial runs keep the degenerate shape.
    SweepOptions serial;
    serial.trackAliasing = false;
    serial.minTotalBits = 4;
    serial.maxTotalBits = 7;
    const SweepResult s =
        sweepScheme(prepared, SchemeKind::GAs, serial);
    EXPECT_EQ(s.kernel.segmentsPerGroup(), 1.0);
    EXPECT_EQ(s.kernel.shardsPerGroup(), 1.0);
    EXPECT_EQ(s.kernel.warmupBranches, 0u);
}

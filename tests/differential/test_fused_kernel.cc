/**
 * @file
 * Differential verification of the fused single-pass sweep kernel:
 * for fuzzed sets of (tier, split) configurations across all seven
 * sweep schemes, the fused packed-counter kernel, the per-config
 * kernel (runConfigJob) and the naive reference model must agree
 * bit-exactly on every misprediction rate.
 *
 * This is the sweep-group-shaped complement of the per-pair fused
 * cross-check inside runDifferentialFuzzer (which the tier-1 campaign
 * in test_differential_fuzz.cc runs): here whole mixed-tier job lists
 * go through planFusedGroups/runFusedGroup exactly as sweepScheme
 * dispatches them.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/sweep.hh"
#include "verify/differential.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::verify;

namespace {

constexpr SchemeKind allKinds[] = {
    SchemeKind::AddressIndexed, SchemeKind::GAg,
    SchemeKind::GAs,            SchemeKind::Gshare,
    SchemeKind::Path,           SchemeKind::PAsPerfect,
    SchemeKind::PAsFinite,
};

MemoryTrace
fuzzTrace(std::uint64_t seed, std::uint64_t conditionals)
{
    WorkloadParams p;
    p.name = "fused-diff-" + std::to_string(seed);
    p.seed = seed;
    p.staticBranches = 80;
    p.functionCount = 8;
    p.targetConditionals = conditionals;
    return generateTrace(p);
}

/** A job's reference-model twin under the given sweep options. */
RefConfig
refConfigFor(const ConfigJob &job, const SweepOptions &opts)
{
    RefConfig config;
    switch (job.kind) {
      case SchemeKind::AddressIndexed:
        config.scheme = RefScheme::AddressIndexed;
        break;
      case SchemeKind::GAg: config.scheme = RefScheme::GAg; break;
      case SchemeKind::GAs: config.scheme = RefScheme::GAs; break;
      case SchemeKind::Gshare: config.scheme = RefScheme::Gshare; break;
      case SchemeKind::Path: config.scheme = RefScheme::Path; break;
      case SchemeKind::PAsPerfect:
        config.scheme = RefScheme::PAsPerfect;
        break;
      case SchemeKind::PAsFinite:
        config.scheme = RefScheme::PAsFinite;
        break;
      case SchemeKind::Tage: config.scheme = RefScheme::Tage; break;
      case SchemeKind::Perceptron:
        config.scheme = RefScheme::Perceptron;
        break;
    }
    config.rowBits = job.rowBits;
    config.colBits = job.colBits;
    config.pathBitsPerTarget = opts.pathBitsPerTarget;
    config.bhtEntries = opts.bhtEntries;
    config.bhtAssoc = opts.bhtAssoc;
    config.tagBits = opts.tageTagBits;
    config.tageHistories = opts.tageHistories;
    config.perceptronTables = opts.perceptronTables;
    return config;
}

/** Run @p jobs through planFusedGroups/runFusedGroup. */
std::vector<ConfigResult>
runFused(const PreparedTrace &t, const std::vector<ConfigJob> &jobs,
         const SweepOptions &opts, unsigned threads)
{
    StreamCache cache(t, opts);
    cache.prepare(jobs, 1);
    std::vector<ConfigResult> slots(jobs.size());
    for (const FusedGroup &group :
         planFusedGroups(jobs, opts, threads))
        runFusedGroup(group, jobs, cache, slots.data());
    return slots;
}

} // namespace

TEST(FusedKernelDifferential, FuzzedGroupsAgreeWithPerConfigKernel)
{
    // Fuzzed mixed-tier job lists for every scheme: the fused group
    // execution must match runConfigJob exactly, field for field.
    Pcg32 rng(0xF05ED0BAULL, 11);
    for (int round = 0; round < 10; ++round) {
        const SchemeKind kind = allKinds[rng.nextBounded(7)];
        MemoryTrace trace =
            fuzzTrace(1000 + round, 2000 + rng.nextBounded(3000));
        PreparedTrace prepared(trace);

        SweepOptions opts;
        opts.trackAliasing = false;
        opts.fuseJobs = true;
        opts.bhtEntries = 32u << rng.nextBounded(3);
        opts.bhtAssoc = rng.nextBounded(2) ? 4 : 2;

        // A fuzzed (tier, split) set: random tiers 4..9, random
        // splits, duplicates of row width across tiers included.
        std::vector<ConfigJob> jobs;
        const std::size_t count = 3 + rng.nextBounded(6);
        for (std::size_t j = 0; j < count; ++j) {
            unsigned total = 4 + rng.nextBounded(6);
            unsigned r = rng.nextBounded(total + 1);
            if (kind == SchemeKind::AddressIndexed)
                r = 0;
            if (kind == SchemeKind::GAg)
                r = total;
            jobs.push_back(ConfigJob{kind, total, r, total - r});
        }

        const unsigned threads = 1 + rng.nextBounded(3);
        std::vector<ConfigResult> fused =
            runFused(prepared, jobs, opts, threads);

        StreamCache per_config_cache(prepared, opts);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            ConfigResult expected =
                runConfigJob(jobs[j], per_config_cache);
            EXPECT_EQ(fused[j].mispRate, expected.mispRate)
                << schemeKindName(kind) << " r=" << jobs[j].rowBits
                << " c=" << jobs[j].colBits << " round " << round;
            EXPECT_EQ(fused[j].bhtMissRate, expected.bhtMissRate)
                << schemeKindName(kind) << " round " << round;
            EXPECT_EQ(fused[j].aliasRate, expected.aliasRate);
            EXPECT_EQ(fused[j].harmlessFraction,
                      expected.harmlessFraction);
        }
    }
}

TEST(FusedKernelDifferential, AllSchemesAgreeWithReferenceModel)
{
    // Close the triangle: fused kernel vs the naive reference model,
    // exact equality, on a fuzzed split per scheme per tier.
    Pcg32 rng(0xD1FF05EDULL, 3);
    MemoryTrace trace = fuzzTrace(77, 2500);
    PreparedTrace prepared(trace);

    for (SchemeKind kind : allKinds) {
        SweepOptions opts;
        opts.trackAliasing = false;
        opts.fuseJobs = true;
        opts.bhtEntries = 64;
        opts.bhtAssoc = 4;

        std::vector<ConfigJob> jobs;
        for (unsigned total : {4u, 6u, 8u}) {
            unsigned r = rng.nextBounded(total + 1);
            if (kind == SchemeKind::AddressIndexed)
                r = 0;
            if (kind == SchemeKind::GAg)
                r = total;
            jobs.push_back(ConfigJob{kind, total, r, total - r});
        }

        std::vector<ConfigResult> fused =
            runFused(prepared, jobs, opts, 1);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const double reference =
                referenceMispRate(refConfigFor(jobs[j], opts), trace);
            EXPECT_EQ(fused[j].mispRate, reference)
                << schemeKindName(kind) << " r=" << jobs[j].rowBits
                << " c=" << jobs[j].colBits;
        }
    }
}

TEST(FusedKernelDifferential, ForcedDispatchTargetsBitIdentical)
{
    // The SIMD dispatch campaign: >= 100 fuzzed group configurations,
    // each executed under EVERY dispatch target this host supports
    // (scalar always; SSE2/AVX2 when available), with every target
    // held to exact equality against the per-config kernel -- and the
    // first job of each round against the naive reference model, so a
    // kernel bug that somehow fooled both fast paths still surfaces.
    const std::vector<SimdTarget> targets = supportedSimdTargets();
    ASSERT_GE(targets.size(), 1u);
    ASSERT_EQ(targets.front(), SimdTarget::Scalar);

    Pcg32 rng(0x51D0F05EULL, 17);
    std::size_t configs_checked = 0;
    for (int round = 0; configs_checked < 100; ++round) {
        ASSERT_LT(round, 64) << "fuzzer failed to reach 100 configs";
        const SchemeKind kind = allKinds[rng.nextBounded(7)];
        MemoryTrace trace =
            fuzzTrace(4000 + round, 1500 + rng.nextBounded(2500));
        PreparedTrace prepared(trace);

        SweepOptions opts;
        opts.trackAliasing = false;
        opts.fuseJobs = true;
        opts.bhtEntries = 32u << rng.nextBounded(3);
        opts.bhtAssoc = rng.nextBounded(2) ? 4 : 2;

        std::vector<ConfigJob> jobs;
        const std::size_t count = 4 + rng.nextBounded(5);
        for (std::size_t j = 0; j < count; ++j) {
            unsigned total = 4 + rng.nextBounded(7);
            unsigned r = rng.nextBounded(total + 1);
            if (kind == SchemeKind::AddressIndexed)
                r = 0;
            if (kind == SchemeKind::GAg)
                r = total;
            jobs.push_back(ConfigJob{kind, total, r, total - r});
        }

        StreamCache per_config_cache(prepared, opts);
        std::vector<ConfigResult> expected(jobs.size());
        for (std::size_t j = 0; j < jobs.size(); ++j)
            expected[j] = runConfigJob(jobs[j], per_config_cache);
        const double reference =
            referenceMispRate(refConfigFor(jobs[0], opts), trace);

        for (SimdTarget target : targets) {
            SweepOptions forced = opts;
            forced.simd = target;
            std::vector<ConfigResult> fused =
                runFused(prepared, jobs, forced,
                         1 + rng.nextBounded(2));
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                EXPECT_EQ(fused[j].mispRate, expected[j].mispRate)
                    << simdTargetName(target) << " "
                    << schemeKindName(kind) << " r=" << jobs[j].rowBits
                    << " c=" << jobs[j].colBits << " round " << round;
                EXPECT_EQ(fused[j].bhtMissRate,
                          expected[j].bhtMissRate)
                    << simdTargetName(target) << " round " << round;
            }
            EXPECT_EQ(fused[0].mispRate, reference)
                << simdTargetName(target) << " "
                << schemeKindName(kind) << " vs reference, round "
                << round;
        }
        configs_checked += jobs.size();
    }
    EXPECT_GE(configs_checked, 100u);
}

TEST(FusedKernelDifferential, WholeSweepTriangleOnCoreSchemes)
{
    // sweepScheme end to end, fused vs per-config, with reference
    // spot checks at the corners of each scheme's surface.
    MemoryTrace trace = fuzzTrace(5, 4000);
    PreparedTrace prepared(trace);

    for (SchemeKind kind : allKinds) {
        SweepOptions fused;
        fused.minTotalBits = 4;
        fused.maxTotalBits = 7;
        fused.trackAliasing = false;
        fused.bhtEntries = 64;
        fused.fuseJobs = true;
        SweepOptions per_config = fused;
        per_config.fuseJobs = false;

        SweepResult rf = sweepScheme(prepared, kind, fused);
        SweepResult rp = sweepScheme(prepared, kind, per_config);
        ASSERT_EQ(rf.misprediction.tiers().size(),
                  rp.misprediction.tiers().size());
        for (std::size_t t = 0; t < rf.misprediction.tiers().size();
             ++t) {
            const SurfaceTier &tf = rf.misprediction.tiers()[t];
            const SurfaceTier &tp = rp.misprediction.tiers()[t];
            ASSERT_EQ(tf.points.size(), tp.points.size());
            for (std::size_t p = 0; p < tf.points.size(); ++p)
                EXPECT_EQ(tf.points[p].value, tp.points[p].value)
                    << schemeKindName(kind) << " tier 2^"
                    << tf.totalBits << " rows 2^"
                    << tf.points[p].rowBits;
        }

        // Reference spot check at both edges of the largest tier.
        for (const SurfacePoint &pt :
             {rf.misprediction.tiers().back().points.front(),
              rf.misprediction.tiers().back().points.back()}) {
            ConfigJob job{kind, pt.rowBits + pt.colBits, pt.rowBits,
                          pt.colBits};
            const double reference =
                referenceMispRate(refConfigFor(job, fused), trace);
            EXPECT_EQ(pt.value, reference)
                << schemeKindName(kind) << " r=" << pt.rowBits
                << " c=" << pt.colBits;
        }
    }
}

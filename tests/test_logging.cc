/**
 * @file
 * Tests for the logging/error layer: the panic/fatal distinction and the
 * quiet switch the benches rely on for machine-readable stdout.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace bpsim;

TEST(Logging, ConcatJoinsHeterogeneousArguments)
{
    EXPECT_EQ(detail::concat("a", 1, 'b', 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat(42), "42");
}

TEST(Logging, QuietFlagRoundTrips)
{
    bool before = quiet();
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
    setQuiet(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(bpsim_panic("broken invariant ", 7),
                 "panic: broken invariant 7");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(bpsim_fatal("bad user input"),
                ::testing::ExitedWithCode(1), "fatal: bad user input");
}

TEST(LoggingDeathTest, AssertPassesOnTrue)
{
    bpsim_assert(1 + 1 == 2, "arithmetic");
    SUCCEED();
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(bpsim_assert(false, "must not hold"),
                 "assertion 'false' failed");
}

TEST(Logging, WarnRespectsQuiet)
{
    // warn() must not terminate and must honour the quiet flag; this is
    // primarily a does-not-crash test.
    setQuiet(true);
    bpsim_warn("suppressed warning");
    setQuiet(false);
    SUCCEED();
}

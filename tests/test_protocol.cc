/**
 * @file
 * Unit tests for the service line protocol: the JSON layer's parse/
 * render discipline (strict syntax, structural limits, exact double
 * round trips) and the request parser's strictness (unknown keys,
 * range checks, trace-reference forms).  The protocol is the daemon's
 * attack surface; these tests pin its contract at the unit level, the
 * fuzz campaign (test_service_fuzz) attacks it byte by byte.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "service/json.hh"
#include "service/protocol.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

JsonValue
parseOk(const std::string &text)
{
    Result<JsonValue> v = parseJson(text);
    EXPECT_TRUE(v.ok()) << text << ": "
                        << (v.ok() ? "" : v.error().message());
    return v.ok() ? std::move(v).value() : JsonValue();
}

// --- JSON parsing ------------------------------------------------------

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_TRUE(parseOk("1.5").isNumber());
    EXPECT_EQ(parseOk("1.5").asDouble(), 1.5);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(Json, IntVersusDoubleKinds)
{
    EXPECT_TRUE(parseOk("42").isInt());
    EXPECT_FALSE(parseOk("42.0").isInt());
    EXPECT_TRUE(parseOk("42.0").isNumber());
    EXPECT_TRUE(parseOk("1e3").isNumber());
    EXPECT_FALSE(parseOk("1e3").isInt());
}

TEST(Json, ParsesContainers)
{
    JsonValue v = parseOk("{\"a\": [1, 2, {\"b\": true}], \"c\": {}}");
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array().size(), 3u);
    EXPECT_EQ(a->array()[1].asInt(), 2);
    EXPECT_TRUE(a->array()[2].find("b")->asBool());
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\nb\\t\\\"c\\\\\"").asString(),
              "a\nb\t\"c\\");
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    // UTF-8 encodings of BMP and astral codepoints.
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput)
{
    const char *bad[] = {
        "",          "{",          "}",        "[1,",
        "{\"a\":}",  "{\"a\" 1}",  "tru",      "nul",
        "01",        "1.",         "1e",       "-",
        "\"abc",     "\"\\q\"",    "\"\\u12\"", "{\"a\":1,}",
        "[1 2]",     "{'a':1}",    "1 2",      "{}garbage",
        "\"\\ud800\"", "\"\\udc00\"",
    };
    for (const char *text : bad)
        EXPECT_FALSE(parseJson(text).ok()) << text;
}

TEST(Json, RejectsDuplicateKeys)
{
    Result<JsonValue> v = parseJson("{\"a\":1,\"a\":2}");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message().find("duplicate"),
              std::string::npos);
}

TEST(Json, EnforcesLimits)
{
    JsonLimits limits;
    limits.maxDepth = 3;
    limits.maxStringBytes = 4;
    limits.maxMembers = 2;
    EXPECT_TRUE(parseJson("[[[1]]]", limits).ok());
    EXPECT_FALSE(parseJson("[[[[1]]]]", limits).ok());
    EXPECT_TRUE(parseJson("\"abcd\"", limits).ok());
    EXPECT_FALSE(parseJson("\"abcde\"", limits).ok());
    EXPECT_TRUE(parseJson("[1,2]", limits).ok());
    EXPECT_FALSE(parseJson("[1,2,3]", limits).ok());
    EXPECT_FALSE(
        parseJson("{\"a\":1,\"b\":2,\"c\":3}", limits).ok());
}

TEST(Json, RejectsUnescapedControlCharacters)
{
    EXPECT_FALSE(parseJson("\"a\nb\"").ok());
    EXPECT_EQ(parseOk("\"a\\u0001b\"").asString(),
              std::string("a\x01"
                          "b"));
}

// --- JSON rendering ----------------------------------------------------

TEST(Json, RenderRoundTripsStructure)
{
    const std::string text =
        "{\"a\":[1,2.5,true,null],\"b\":\"x\\ny\"}";
    JsonValue v = parseOk(text);
    EXPECT_EQ(v.render(), text);
}

TEST(Json, DoublesRoundTripExactly)
{
    const double values[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        0.1,
        1e-300,
        1e300,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        0.042899999999999987,
        123456789.0, // integral double must come back as Double
    };
    for (double value : values) {
        JsonValue rendered(value);
        JsonValue parsed = parseOk(rendered.render());
        ASSERT_TRUE(parsed.isNumber()) << rendered.render();
        EXPECT_FALSE(parsed.isInt()) << rendered.render();
        const double back = parsed.asDouble();
        EXPECT_EQ(std::memcmp(&back, &value, sizeof(double)), 0)
            << rendered.render();
    }
}

TEST(Json, EscapesOnRender)
{
    JsonValue v(std::string("a\"b\\c\nd\x01"));
    EXPECT_EQ(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    JsonValue back = parseOk(v.render());
    EXPECT_EQ(back.asString(), v.asString());
}

// --- Request parsing ---------------------------------------------------

Result<Request>
parseLine(const std::string &text)
{
    Result<JsonValue> json = parseJson(text);
    if (!json.ok())
        return json.error();
    return parseRequest(json.value());
}

TEST(Protocol, ParsesMinimalOps)
{
    for (const char *op :
         {"ping", "stats", "catalog", "shutdown"}) {
        Result<Request> req = parseLine(
            std::string("{\"op\":\"") + op + "\",\"id\":\"i\"}");
        ASSERT_TRUE(req.ok()) << op;
        EXPECT_EQ(std::string(requestOpName(req.value().op)), op);
        EXPECT_EQ(req.value().id, "i");
    }
}

TEST(Protocol, ParsesSweepRequest)
{
    Result<Request> req = parseLine(
        "{\"op\":\"sweep\",\"id\":\"s\",\"trace\":{\"profile\":"
        "\"gcc\",\"branches\":5000},\"scheme\":\"gshare\","
        "\"options\":{\"min_bits\":5,\"max_bits\":9,\"aliasing\":"
        "false},\"bypass_cache\":true}");
    ASSERT_TRUE(req.ok()) << (req.ok() ? "" : req.error().message());
    const Request &r = req.value();
    EXPECT_EQ(r.op, RequestOp::Sweep);
    EXPECT_TRUE(r.trace.byProfile());
    EXPECT_EQ(r.trace.profile, "gcc");
    EXPECT_EQ(r.trace.branches, 5000u);
    EXPECT_EQ(r.scheme, "gshare");
    EXPECT_EQ(r.options.minTotalBits, 5u);
    EXPECT_EQ(r.options.maxTotalBits, 9u);
    EXPECT_FALSE(r.options.trackAliasing);
    EXPECT_TRUE(r.bypassCache);
}

TEST(Protocol, ParsesSegmentParallelOptions)
{
    Result<Request> req = parseLine(
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"gshare\",\"options\":{\"segments\":4,"
        "\"fused_threads\":8,\"segment_warmup\":512}}");
    ASSERT_TRUE(req.ok()) << (req.ok() ? "" : req.error().message());
    EXPECT_EQ(req.value().options.segments, 4u);
    EXPECT_EQ(req.value().options.fusedThreads, 8u);
    EXPECT_EQ(req.value().options.segmentWarmup, 512u);

    // Unset, the defaults stay: exact replay, serial lane dimension.
    Result<Request> plain = parseLine(
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"gshare\"}");
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.value().options.segments, 0u);
    EXPECT_EQ(plain.value().options.fusedThreads, 1u);

    // Bounds: segments in [1, kMaxSegments], fused_threads capped.
    const char *bad[] = {
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"segments\":0}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"segments\":65}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"fused_threads\":1000}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"segment_warmup\":-1}}",
    };
    for (const char *text : bad)
        EXPECT_FALSE(parseLine(text).ok()) << text;
}

TEST(Protocol, ParsesTraceForms)
{
    Result<Request> by_hash = parseLine(
        "{\"op\":\"intern\",\"trace\":{\"hash\":"
        "\"00000000000000010000000000000002\"}}");
    ASSERT_TRUE(by_hash.ok());
    EXPECT_TRUE(by_hash.value().trace.byHash());
    EXPECT_EQ(by_hash.value().trace.hash.hi, 1u);
    EXPECT_EQ(by_hash.value().trace.hash.lo, 2u);

    Result<Request> by_file = parseLine(
        "{\"op\":\"intern\",\"trace\":{\"file\":\"t.bpt\"}}");
    ASSERT_TRUE(by_file.ok());
    EXPECT_TRUE(by_file.value().trace.byFile());
}

TEST(Protocol, RejectsBadRequests)
{
    const char *bad[] = {
        // unknown / missing / wrong-typed fields
        "{\"id\":\"x\"}",
        "{\"op\":\"teleport\"}",
        "{\"op\":7}",
        "{\"op\":\"ping\",\"bogus\":1}",
        "{\"op\":\"ping\",\"trace\":{\"profile\":\"gcc\"}}",
        "{\"op\":\"sweep\",\"scheme\":\"gshare\"}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"}}",
        "{\"op\":\"sweep\",\"trace\":{},\"scheme\":\"g\"}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"a\",\"hash\":"
        "\"00000000000000010000000000000002\"},\"scheme\":\"g\"}",
        "{\"op\":\"sweep\",\"trace\":{\"branches\":5,\"file\":"
        "\"t.bpt\"},\"scheme\":\"g\"}",
        "{\"op\":\"sweep\",\"trace\":{\"wat\":1},\"scheme\":\"g\"}",
        "{\"op\":\"sweep\",\"trace\":{\"hash\":\"xyz\"},"
        "\"scheme\":\"g\"}",
        // options discipline
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"min_bits\":9,"
        "\"max_bits\":5}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"max_bits\":60}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"bht_entries\":100}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"turbo\":true}}",
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"options\":{\"min_bits\":-3}}",
        // point discipline
        "{\"op\":\"point\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\"}",
        "{\"op\":\"point\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"row_bits\":20,\"col_bits\":20}",
        // sweep-only fields leaking onto other ops
        "{\"op\":\"point\",\"trace\":{\"profile\":\"gcc\"},"
        "\"scheme\":\"g\",\"row_bits\":1,\"col_bits\":1,"
        "\"bypass_cache\":true}",
    };
    for (const char *text : bad)
        EXPECT_FALSE(parseLine(text).ok()) << text;
}

TEST(Protocol, EnforcesFieldLimits)
{
    ProtocolLimits limits;
    const std::string big_id(limits.maxIdBytes + 1, 'x');
    Result<Request> req = parseLine(
        "{\"op\":\"ping\",\"id\":\"" + big_id + "\"}");
    EXPECT_FALSE(req.ok());

    const std::string ok_id(limits.maxIdBytes, 'x');
    EXPECT_TRUE(
        parseLine("{\"op\":\"ping\",\"id\":\"" + ok_id + "\"}")
            .ok());
}

TEST(Protocol, ResponseBuilders)
{
    JsonValue ok = okResponse("abc", RequestOp::Sweep);
    EXPECT_TRUE(ok.find("ok")->asBool());
    EXPECT_EQ(ok.find("id")->asString(), "abc");
    EXPECT_EQ(ok.find("op")->asString(), "sweep");

    JsonValue err =
        errorResponse("abc", errcode::kBadRequest, "broken");
    EXPECT_FALSE(err.find("ok")->asBool());
    const JsonValue *error = err.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("code")->asString(), "bad_request");
    EXPECT_EQ(error->find("message")->asString(), "broken");
}

TEST(Protocol, SurfaceJsonPreservesShapeAndBits)
{
    Surface s("misp");
    s.add(4, 0, 4, 0.25);
    s.add(4, 1, 3, 1.0 / 3.0);
    s.add(5, 2, 3, 0.1);
    JsonValue v = surfaceJson(s);
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.array().size(), 2u);
    const JsonValue &tier = v.array()[0];
    EXPECT_EQ(tier.find("total_bits")->asInt(), 4);
    ASSERT_EQ(tier.find("points")->array().size(), 2u);
    const double value =
        tier.find("points")->array()[1].find("value")->asDouble();
    const double expect = 1.0 / 3.0;
    EXPECT_EQ(std::memcmp(&value, &expect, sizeof(double)), 0);
}

} // namespace

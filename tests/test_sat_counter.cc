/**
 * @file
 * Unit tests for the N-bit saturating counter, the state machine behind
 * every second-level table entry in the paper.
 */

#include <gtest/gtest.h>

#include "common/sat_counter.hh"

using namespace bpsim;

TEST(TwoBitCounter, InitialStateIsWeaklyTaken)
{
    TwoBitCounter c;
    EXPECT_EQ(c.raw(), 2);
    EXPECT_TRUE(c.predict());
}

TEST(TwoBitCounter, SaturatesHigh)
{
    TwoBitCounter c;
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.saturated());
}

TEST(TwoBitCounter, SaturatesLow)
{
    TwoBitCounter c;
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_EQ(c.raw(), 0);
    EXPECT_TRUE(c.saturated());
}

TEST(TwoBitCounter, HysteresisSurvivesOneDeviation)
{
    // The defining property of the 2-bit counter [Smith81]: one
    // not-taken outcome in a run of takens does not flip the prediction.
    TwoBitCounter c;
    c.update(true);
    c.update(true); // strongly taken
    c.update(false);
    EXPECT_TRUE(c.predict());
    c.update(false);
    EXPECT_FALSE(c.predict());
}

TEST(TwoBitCounter, StateSequenceMatchesSmith81)
{
    TwoBitCounter c(0);
    EXPECT_FALSE(c.predict()); // strongly not-taken
    c.update(true);
    EXPECT_EQ(c.raw(), 1);
    EXPECT_FALSE(c.predict()); // weakly not-taken
    c.update(true);
    EXPECT_EQ(c.raw(), 2);
    EXPECT_TRUE(c.predict()); // weakly taken
    c.update(true);
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.predict()); // strongly taken
}

TEST(TwoBitCounter, ExplicitInitialStateClamped)
{
    TwoBitCounter c(200);
    EXPECT_EQ(c.raw(), 3);
}

TEST(TwoBitCounter, SetClampsToRange)
{
    TwoBitCounter c;
    c.set(7);
    EXPECT_EQ(c.raw(), 3);
    c.set(1);
    EXPECT_EQ(c.raw(), 1);
}

TEST(TwoBitCounter, EqualityComparesState)
{
    TwoBitCounter a(1), b(1), c(2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(OneBitCounter, ActsAsLastOutcome)
{
    SatCounter<1> c;
    c.update(false);
    EXPECT_FALSE(c.predict());
    c.update(true);
    EXPECT_TRUE(c.predict());
    c.update(false);
    EXPECT_FALSE(c.predict());
}

/** Width-parameterised properties of the saturating counter family. */
template <unsigned Bits>
void
checkWidthProperties()
{
    SatCounter<Bits> c;
    EXPECT_EQ(c.raw(), 1u << (Bits - 1)) << "weakly-taken reset";
    EXPECT_TRUE(c.predict());

    // Saturation after maxValue updates in either direction.
    for (unsigned i = 0; i <= SatCounter<Bits>::maxValue + 2; ++i)
        c.update(true);
    EXPECT_EQ(c.raw(), SatCounter<Bits>::maxValue);
    for (unsigned i = 0; i <= SatCounter<Bits>::maxValue + 2; ++i)
        c.update(false);
    EXPECT_EQ(c.raw(), 0);

    // Prediction is the MSB: below half predicts not-taken.
    c.set(SatCounter<Bits>::weaklyNotTaken);
    EXPECT_FALSE(c.predict());
    c.set(SatCounter<Bits>::weaklyTaken);
    EXPECT_TRUE(c.predict());

    // Each update moves the state by exactly one (when unsaturated).
    c.set(SatCounter<Bits>::weaklyTaken);
    auto before = c.raw();
    c.update(false);
    EXPECT_EQ(c.raw(), before - 1);
}

/** Boundary behaviour at saturation and construction, any width. */
template <unsigned Bits>
void
checkBoundaryProperties()
{
    using C = SatCounter<Bits>;

    // Updates at either saturation point are idempotent: the state and
    // the prediction are both unchanged.
    C high(C::maxValue);
    EXPECT_TRUE(high.saturated());
    high.update(true);
    EXPECT_EQ(high.raw(), C::maxValue);
    EXPECT_TRUE(high.predict());

    C low(0);
    EXPECT_TRUE(low.saturated());
    low.update(false);
    EXPECT_EQ(low.raw(), 0);
    EXPECT_FALSE(low.predict());

    // One step away from saturation is not saturated (width >= 2).
    if (Bits >= 2) {
        C nearHigh(C::maxValue - 1);
        EXPECT_FALSE(nearHigh.saturated());
        C nearLow(1);
        EXPECT_FALSE(nearLow.saturated());
    }

    // Construction clamps out-of-range initial values; in-range values
    // are taken verbatim.
    EXPECT_EQ(C(255).raw(), C::maxValue);
    EXPECT_EQ(C(C::maxValue).raw(), C::maxValue);
    EXPECT_EQ(C(0).raw(), 0);

    // The weakly-taken / weakly-not-taken boundary straddles the MSB:
    // a single update crosses it in either direction.
    C c(C::weaklyNotTaken);
    EXPECT_FALSE(c.predict());
    c.update(true);
    EXPECT_EQ(c.raw(), C::weaklyTaken);
    EXPECT_TRUE(c.predict());
    c.update(false);
    EXPECT_EQ(c.raw(), C::weaklyNotTaken);
    EXPECT_FALSE(c.predict());

    // Walking the full range in each direction visits every state
    // exactly once (maxValue steps end-to-end).
    C walker(0);
    for (unsigned i = 0; i < C::maxValue; ++i) {
        EXPECT_EQ(walker.raw(), i);
        walker.update(true);
    }
    EXPECT_EQ(walker.raw(), C::maxValue);
}

TEST(SatCounterBoundaries, Bits1) { checkBoundaryProperties<1>(); }
TEST(SatCounterBoundaries, Bits2) { checkBoundaryProperties<2>(); }
TEST(SatCounterBoundaries, Bits3) { checkBoundaryProperties<3>(); }
TEST(SatCounterBoundaries, Bits4) { checkBoundaryProperties<4>(); }
TEST(SatCounterBoundaries, Bits8) { checkBoundaryProperties<8>(); }

TEST(SatCounterBoundaries, EightBitMaxValueIs255)
{
    // Width 8 is the supported ceiling; maxValue must fill the whole
    // uint8_t without wrapping.
    EXPECT_EQ(SatCounter<8>::maxValue, 255u);
    SatCounter<8> c(255);
    c.update(true);
    EXPECT_EQ(c.raw(), 255u);
}

/**
 * The branchless update must implement exactly the textbook if/else
 * transition function.  This spells that specification out longhand
 * and exhausts every (state, outcome) pair for the width, including
 * both saturation boundaries.
 */
template <unsigned Bits>
void
checkBranchlessMatchesSpec()
{
    using C = SatCounter<Bits>;
    auto spec = [](std::uint8_t value, bool taken) -> std::uint8_t {
        if (taken) {
            if (value < C::maxValue)
                ++value;
        } else {
            if (value > 0)
                --value;
        }
        return value;
    };

    for (unsigned state = 0; state <= C::maxValue; ++state) {
        for (bool taken : {false, true}) {
            C c(static_cast<std::uint8_t>(state));
            c.update(taken);
            EXPECT_EQ(c.raw(),
                      spec(static_cast<std::uint8_t>(state), taken))
                << "width " << Bits << " state " << state << " taken "
                << taken;
        }
    }
}

TEST(SatCounterBranchless, MatchesSpecBits1)
{
    checkBranchlessMatchesSpec<1>();
}
TEST(SatCounterBranchless, MatchesSpecBits2)
{
    checkBranchlessMatchesSpec<2>();
}
TEST(SatCounterBranchless, MatchesSpecBits3)
{
    checkBranchlessMatchesSpec<3>();
}
TEST(SatCounterBranchless, MatchesSpecBits5)
{
    checkBranchlessMatchesSpec<5>();
}
TEST(SatCounterBranchless, MatchesSpecBits8)
{
    checkBranchlessMatchesSpec<8>();
}

TEST(SatCounterWidths, Bits1) { checkWidthProperties<1>(); }
TEST(SatCounterWidths, Bits2) { checkWidthProperties<2>(); }
TEST(SatCounterWidths, Bits3) { checkWidthProperties<3>(); }
TEST(SatCounterWidths, Bits4) { checkWidthProperties<4>(); }
TEST(SatCounterWidths, Bits5) { checkWidthProperties<5>(); }
TEST(SatCounterWidths, Bits6) { checkWidthProperties<6>(); }
TEST(SatCounterWidths, Bits8) { checkWidthProperties<8>(); }

/**
 * @file
 * Tests for the finite set-associative branch history table (the PAs
 * first level), including the paper's 0xC3FF miss-reset policy and the
 * direct-mapped-conflict property claimed in DESIGN.md.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/bht.hh"
#include "stats/aliasing.hh"

using namespace bpsim;

TEST(SetAssocBht, Geometry)
{
    SetAssocBht bht(64, 4, 10);
    EXPECT_EQ(bht.entryCount(), 64u);
    EXPECT_EQ(bht.associativity(), 4u);
    EXPECT_EQ(bht.historyBits(), 10u);
}

TEST(SetAssocBht, FirstVisitMissesAndResetsToC3ff)
{
    SetAssocBht bht(16, 4, 10);
    BhtLookup r = bht.visit(0x400100);
    EXPECT_TRUE(r.miss);
    EXPECT_EQ(r.history, c3ffPrefix(10));
    EXPECT_EQ(bht.misses(), 1u);
    EXPECT_EQ(bht.visits(), 1u);
}

TEST(SetAssocBht, HitReturnsAccumulatedHistory)
{
    SetAssocBht bht(16, 4, 4);
    bht.visit(0x400100);
    bht.recordOutcome(0x400100, true);
    bht.recordOutcome(0x400100, false);
    BhtLookup r = bht.visit(0x400100);
    EXPECT_FALSE(r.miss);
    EXPECT_EQ(r.history, bits((c3ffPrefix(4) << 2) | 0b10, 4));
}

TEST(SetAssocBht, DistinctBranchesKeepDistinctHistories)
{
    SetAssocBht bht(16, 4, 4);
    bht.visit(0x400100);
    bht.visit(0x400200);
    bht.recordOutcome(0x400100, true);
    bht.recordOutcome(0x400200, false);
    EXPECT_NE(bht.visit(0x400100).history,
              bht.visit(0x400200).history);
}

TEST(SetAssocBht, LruEvictionWithinASet)
{
    // Direct construction of a conflict: one set (fully associative
    // with 2 entries), three branches.
    SetAssocBht bht(2, 2, 8);
    bht.visit(0x100); // A
    bht.visit(0x200); // B
    bht.visit(0x100); // touch A -> B becomes LRU
    bht.visit(0x300); // C evicts B
    EXPECT_FALSE(bht.visit(0x100).miss); // A still resident
    EXPECT_TRUE(bht.visit(0x200).miss);  // B was evicted
}

TEST(SetAssocBht, EvictionResetsHistoryToPrefix)
{
    SetAssocBht bht(1, 1, 8);
    bht.visit(0x100);
    bht.recordOutcome(0x100, true);
    bht.visit(0x200); // evicts 0x100
    // Re-fetch 0x100: fresh reset history again.
    BhtLookup r = bht.visit(0x100);
    EXPECT_TRUE(r.miss);
    EXPECT_EQ(r.history, c3ffPrefix(8));
}

TEST(SetAssocBht, DirectMappedUsesLowWordBits)
{
    SetAssocBht bht(4, 1, 4);
    // 0x400100 and 0x400110 differ in word-index bit 2 -> same set only
    // if (wordIndex & 3) matches.  wordIndex 0x100040 and 0x100044:
    // sets 0 and 0 (mod 4)... compute explicitly: choose addresses
    // whose word indices differ by exactly 4 (same set in a 4-set
    // table).
    bht.visit(0x400100);
    EXPECT_TRUE(bht.visit(0x400100 + 4 * 4).miss); // same set, new tag
    // The first branch was evicted (1-way): visiting it again misses.
    EXPECT_TRUE(bht.visit(0x400100).miss);
}

TEST(SetAssocBht, PeekDoesNotDisturbState)
{
    SetAssocBht bht(2, 2, 8);
    bht.visit(0x100);
    bht.visit(0x200);
    auto visits_before = bht.visits();
    // Peeks: no LRU churn, no counters.
    EXPECT_TRUE(bht.peek(0x100).has_value());
    EXPECT_FALSE(bht.peek(0x300).has_value());
    EXPECT_EQ(bht.visits(), visits_before);
    // LRU order unchanged: 0x100 is still LRU, evicted next.
    bht.visit(0x300);
    EXPECT_FALSE(bht.peek(0x100).has_value());
    EXPECT_TRUE(bht.peek(0x200).has_value());
}

TEST(SetAssocBht, MissRateTracksVisits)
{
    SetAssocBht bht(16, 4, 4);
    bht.visit(0x100); // miss
    bht.visit(0x100); // hit
    bht.visit(0x100); // hit
    bht.visit(0x200); // miss
    EXPECT_DOUBLE_EQ(bht.missRate(), 0.5);
}

TEST(SetAssocBht, ResetClearsEverything)
{
    SetAssocBht bht(16, 4, 4);
    bht.visit(0x100);
    bht.recordOutcome(0x100, true);
    bht.reset();
    EXPECT_EQ(bht.visits(), 0u);
    EXPECT_EQ(bht.misses(), 0u);
    EXPECT_FALSE(bht.peek(0x100).has_value());
    EXPECT_TRUE(bht.visit(0x100).miss);
}

TEST(SetAssocBhtDeathTest, NonPowerOfTwoEntriesRejected)
{
    EXPECT_DEATH(SetAssocBht(24, 4, 8), "power of two");
}

TEST(SetAssocBhtDeathTest, AssocMustDivideEntries)
{
    EXPECT_DEATH(SetAssocBht(16, 3, 8), "divide");
}

TEST(SetAssocBhtDeathTest, RecordWithoutVisitPanics)
{
    SetAssocBht bht(16, 4, 8);
    EXPECT_DEATH(bht.recordOutcome(0x100, true),
                 "without a preceding visit");
}

TEST(SetAssocBht, ZeroHistoryBitsDegenerate)
{
    SetAssocBht bht(4, 2, 0);
    BhtLookup r = bht.visit(0x100);
    EXPECT_EQ(r.history, 0u);
    bht.recordOutcome(0x100, true);
    EXPECT_EQ(bht.visit(0x100).history, 0u);
}

TEST(SetAssocBht, DesignClaimDirectMappedConflictsEqualAliasRate)
{
    // DESIGN.md: "the conflict rate of a direct-mapped first-level
    // table equals the aliasing rate of an address-indexed second-level
    // table of the same size" (paper, Section 5).  Drive both with an
    // identical access stream and compare.
    constexpr std::size_t entries = 64;
    SetAssocBht bht(entries, 1, 4);
    AliasTracker tracker(entries);

    Pcg32 rng(99);
    std::uint64_t bht_extra_misses = 0; // cold misses differ: count all
    for (int i = 0; i < 20'000; ++i) {
        Addr pc = 0x400000 + 4 * (rng.nextBounded(300));
        bool miss = bht.visit(pc).miss;
        bool conflict = tracker.access(
            static_cast<std::size_t>(wordIndex(pc) % entries), pc);
        // After warm-up, a miss in the 1-way BHT is exactly a conflict
        // in the tracker; cold (first-touch) misses are the only
        // divergence.
        if (miss != conflict)
            ++bht_extra_misses;
    }
    // Divergence bounded by the number of distinct branches (cold
    // misses).
    EXPECT_LE(bht_extra_misses, 300u);
    EXPECT_NEAR(bht.missRate(), tracker.aliasRate(), 300.0 / 20'000.0);
}

TEST(SetAssocBht, ResetPolicies)
{
    for (auto policy : {BhtResetPolicy::Zeros, BhtResetPolicy::Ones,
                        BhtResetPolicy::C3ffPrefix}) {
        SetAssocBht bht(4, 1, 8, policy);
        std::uint64_t expect =
            policy == BhtResetPolicy::Zeros ? 0
            : policy == BhtResetPolicy::Ones ? mask(8)
                                             : c3ffPrefix(8);
        EXPECT_EQ(bht.visit(0x400100).history, expect)
            << bhtResetPolicyName(policy);
        EXPECT_EQ(bht.resetPolicy(), policy);
    }
}

TEST(SetAssocBht, HoldPolicyKeepsVictimHistory)
{
    SetAssocBht bht(1, 1, 4, BhtResetPolicy::Hold);
    bht.visit(0x100);
    bht.recordOutcome(0x100, true);   // history ...0001
    BhtLookup r = bht.visit(0x200);   // evicts, but holds the bits
    EXPECT_TRUE(r.miss);
    EXPECT_EQ(r.history, 0b0001u);
}

TEST(SetAssocBht, PolicyNames)
{
    EXPECT_STREQ(bhtResetPolicyName(BhtResetPolicy::C3ffPrefix),
                 "0xC3FF-prefix");
    EXPECT_STREQ(bhtResetPolicyName(BhtResetPolicy::Zeros), "zeros");
    EXPECT_STREQ(bhtResetPolicyName(BhtResetPolicy::Ones), "ones");
    EXPECT_STREQ(bhtResetPolicyName(BhtResetPolicy::Hold), "hold");
}

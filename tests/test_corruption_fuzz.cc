/**
 * @file
 * Seeded corruption-fuzz campaigns over valid .bpt images (ctest label
 * "robust").  The acceptance contract: well over 200 mutations per
 * campaign, every guaranteed-detectable one (header bit flips, random
 * truncations) returns a structured Error, and no mutation -- payload
 * flips included -- crashes, aborts, or allocates past the file size.
 * Run under the asan-ubsan preset these campaigns double as a memory
 * safety sweep of the whole ingestion stack.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/byte_io.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_io.hh"
#include "verify/fault_injection.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

/** A valid in-memory .bpt image built from a synthetic workload. */
std::string
buildImage(const std::string &profile, std::size_t records)
{
    MemoryTrace trace = generateProfileTrace(profile, records);
    auto sink = std::make_unique<MemoryByteStream>();
    auto *raw = sink.get();
    TraceWriter writer =
        TraceWriter::open(std::move(sink), trace.name()).value();
    EXPECT_TRUE(writer.writeAll(trace).ok());
    EXPECT_TRUE(writer.close().ok());
    return raw->bytes();
}

std::string
joinViolations(const verify::CorruptionReport &report)
{
    std::string all;
    for (const auto &v : report.violations)
        all += v + "\n";
    return all;
}

} // namespace

TEST(CorruptionFuzz, CampaignYieldsOnlyStructuredErrors)
{
    std::string image = buildImage("compress", 64);
    verify::CorruptionReport report =
        verify::fuzzTraceImage(image, /*seed=*/0xC0FFEE,
                               /*truncations=*/90,
                               /*payloadFlips=*/150);

    // 160 header bit flips + 90 truncations: comfortably past the
    // 200-mutation floor, and every one must have errored.
    EXPECT_GE(report.mustErrorMutations, 200u);
    EXPECT_EQ(report.structuredErrors, report.mustErrorMutations);
    EXPECT_EQ(report.payloadMutations, 150u);
    EXPECT_TRUE(report.passed()) << joinViolations(report);
}

TEST(CorruptionFuzz, PayloadFlipsNeverFalsePositive)
{
    // Structure is validated purely by size reconciliation, so a bit
    // flip inside the name or record payload always still parses; the
    // campaign's value there is the no-crash/no-over-allocation sweep.
    std::string image = buildImage("gcc", 32);
    verify::CorruptionReport report =
        verify::fuzzTraceImage(image, /*seed=*/42, /*truncations=*/60,
                               /*payloadFlips=*/200);
    EXPECT_EQ(report.payloadCleanLoads, report.payloadMutations);
    EXPECT_TRUE(report.passed()) << joinViolations(report);
}

TEST(CorruptionFuzz, SeedsAndShapesVary)
{
    // Different workloads, sizes and seeds; also the degenerate
    // zero-record trace whose image is header + name only.
    struct Shape
    {
        const char *profile;
        std::size_t records;
        std::uint64_t seed;
    };
    const Shape shapes[] = {
        {"compress", 1, 1},
        {"espresso", 16, 0xDEADBEEF},
        {"xlisp", 200, 7},
    };
    for (const auto &s : shapes) {
        std::string image = buildImage(s.profile, s.records);
        auto report =
            verify::fuzzTraceImage(image, s.seed, /*truncations=*/50,
                                   /*payloadFlips=*/50);
        EXPECT_TRUE(report.passed())
            << s.profile << "/" << s.records << ": "
            << joinViolations(report);
    }

    // Zero records: every header flip and truncation must still error.
    auto sink = std::make_unique<MemoryByteStream>();
    auto *raw = sink.get();
    TraceWriter writer =
        TraceWriter::open(std::move(sink), "empty").value();
    ASSERT_TRUE(writer.close().ok());
    auto report = verify::fuzzTraceImage(raw->bytes(), 3,
                                         /*truncations=*/50,
                                         /*payloadFlips=*/50);
    EXPECT_TRUE(report.passed()) << joinViolations(report);
    EXPECT_GE(report.mustErrorMutations, 160u);
}

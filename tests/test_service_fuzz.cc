/**
 * @file
 * Protocol fuzz campaign against the sweep daemon, built on the
 * fault-injection harness of src/verify.  Every mutated request line
 * must produce exactly one structured JSON response -- ok or a typed
 * error -- and the server must keep serving afterwards.  A crash, a
 * non-JSON reply, or a silent drop is a violation.
 */

#include <gtest/gtest.h>

#include "service/server.hh"
#include "verify/fault_injection.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

constexpr const char *kValidSweep =
    "{\"op\":\"sweep\",\"id\":\"fuzz-seed\",\"trace\":"
    "{\"profile\":\"compress\",\"branches\":20000},"
    "\"scheme\":\"gshare\","
    "\"options\":{\"min_bits\":4,\"max_bits\":6}}";

void
expectCampaignPasses(SweepServer &server, std::uint64_t seed,
                     std::size_t flips)
{
    verify::RequestFuzzReport report =
        verify::fuzzRequestLines(server, kValidSweep, seed, flips);
    EXPECT_TRUE(report.passed()) << [&] {
        std::string all;
        for (const std::string &violation : report.violations)
            all += violation + "\n";
        return all;
    }();
    EXPECT_GT(report.mustErrorLines, 0u);
    EXPECT_EQ(report.structuredErrors, report.mustErrorLines);
    EXPECT_GT(report.mutatedLines, 0u);
}

TEST(ServiceFuzz, MutatedRequestsAlwaysGetStructuredResponses)
{
    SweepServer server;
    expectCampaignPasses(server, 0x5eedf00d, 200);
}

TEST(ServiceFuzz, CampaignIsSeedSensitiveAndRepeatable)
{
    SweepServer server;
    expectCampaignPasses(server, 1, 64);
    expectCampaignPasses(server, 2, 64);
    // Re-running a seed must not be affected by server state the
    // earlier campaigns left behind (interned traces, cached sweeps).
    expectCampaignPasses(server, 1, 64);
}

TEST(ServiceFuzz, SurvivesFuzzingWithDiskCacheAttached)
{
    ServerOptions opts;
    opts.cacheDir = ::testing::TempDir() + "service_fuzz_cache";
    opts.cacheBudgetBytes = 1 << 20;
    SweepServer server(opts);
    expectCampaignPasses(server, 0xca5e, 96);

    // The daemon still executes real work after the campaign.
    std::string response = server.handleLine(kValidSweep);
    Result<JsonValue> parsed = parseJson(response);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *ok = parsed.value().find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->asBool()) << response;
}

} // namespace

/**
 * @file
 * Protocol fuzz campaign against the sweep daemon, built on the
 * fault-injection harness of src/verify.  Every mutated request line
 * must produce exactly one structured JSON response -- ok or a typed
 * error -- and the server must keep serving afterwards.  A crash, a
 * non-JSON reply, or a silent drop is a violation.
 */

#include <gtest/gtest.h>

#include "service/server.hh"
#include "verify/fault_injection.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

constexpr const char *kValidSweep =
    "{\"op\":\"sweep\",\"id\":\"fuzz-seed\",\"trace\":"
    "{\"profile\":\"compress\",\"branches\":20000},"
    "\"scheme\":\"gshare\","
    "\"options\":{\"min_bits\":4,\"max_bits\":6}}";

void
expectCampaignPasses(SweepServer &server, std::uint64_t seed,
                     std::size_t flips)
{
    verify::RequestFuzzReport report =
        verify::fuzzRequestLines(server, kValidSweep, seed, flips);
    EXPECT_TRUE(report.passed()) << [&] {
        std::string all;
        for (const std::string &violation : report.violations)
            all += violation + "\n";
        return all;
    }();
    EXPECT_GT(report.mustErrorLines, 0u);
    EXPECT_EQ(report.structuredErrors, report.mustErrorLines);
    EXPECT_GT(report.mutatedLines, 0u);
}

constexpr const char *kValidTageSweep =
    "{\"op\":\"sweep\",\"id\":\"fuzz-tage\",\"trace\":"
    "{\"profile\":\"compress\",\"branches\":20000},"
    "\"scheme\":\"tage\","
    "\"options\":{\"min_bits\":4,\"max_bits\":6,"
    "\"tage_tag_bits\":6,\"tage_histories\":[2,5,11]}}";

constexpr const char *kValidPerceptronSweep =
    "{\"op\":\"sweep\",\"id\":\"fuzz-perc\",\"trace\":"
    "{\"profile\":\"compress\",\"branches\":20000},"
    "\"scheme\":\"perceptron\","
    "\"options\":{\"min_bits\":4,\"max_bits\":6,"
    "\"perceptron_tables\":3}}";

TEST(ServiceFuzz, MutatedRequestsAlwaysGetStructuredResponses)
{
    SweepServer server;
    expectCampaignPasses(server, 0x5eedf00d, 200);
}

TEST(ServiceFuzz, MutatedZooRequestsAlwaysGetStructuredResponses)
{
    // The zoo seed lines exercise the multi-table option surface: the
    // list-valued tage_histories array is the protocol's only nested
    // option, so mutations here hit the array validation, the
    // spec-string hint path and the per-scheme range checks.
    SweepServer server;
    verify::RequestFuzzReport tage = verify::fuzzRequestLines(
        server, kValidTageSweep, 0x7a6e, 160);
    EXPECT_TRUE(tage.passed()) << [&] {
        std::string all;
        for (const std::string &violation : tage.violations)
            all += violation + "\n";
        return all;
    }();
    EXPECT_GT(tage.mustErrorLines, 0u);
    EXPECT_EQ(tage.structuredErrors, tage.mustErrorLines);

    verify::RequestFuzzReport perc = verify::fuzzRequestLines(
        server, kValidPerceptronSweep, 0x9e4c, 120);
    EXPECT_TRUE(perc.passed()) << [&] {
        std::string all;
        for (const std::string &violation : perc.violations)
            all += violation + "\n";
        return all;
    }();
    EXPECT_EQ(perc.structuredErrors, perc.mustErrorLines);

    // The daemon still executes real zoo work after both campaigns.
    Result<JsonValue> after =
        parseJson(server.handleLine(kValidTageSweep));
    ASSERT_TRUE(after.ok());
    const JsonValue *ok = after.value().find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->asBool());
}

TEST(ServiceFuzz, CampaignIsSeedSensitiveAndRepeatable)
{
    SweepServer server;
    expectCampaignPasses(server, 1, 64);
    expectCampaignPasses(server, 2, 64);
    // Re-running a seed must not be affected by server state the
    // earlier campaigns left behind (interned traces, cached sweeps).
    expectCampaignPasses(server, 1, 64);
}

TEST(ServiceFuzz, SurvivesFuzzingWithDiskCacheAttached)
{
    ServerOptions opts;
    opts.cacheDir = ::testing::TempDir() + "service_fuzz_cache";
    opts.cacheBudgetBytes = 1 << 20;
    SweepServer server(opts);
    expectCampaignPasses(server, 0xca5e, 96);

    // The daemon still executes real work after the campaign.
    std::string response = server.handleLine(kValidSweep);
    Result<JsonValue> parsed = parseJson(response);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *ok = parsed.value().find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->asBool()) << response;
}

} // namespace

/**
 * @file
 * Unit tests for the TAGE predictor: tag/useful-bit update rules,
 * allocation policy boundaries, equivalence between the online
 * predictor and the sweep engine's model replay, and the cold /
 * capacity / aliasing decomposition the modern-predictor re-study
 * relies on.  Suite names start with "TageZoo" so the tsan preset can
 * select them by name.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "predictor/tage.hh"
#include "sim/engine.hh"
#include "sim/interference.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace &
sharedWorkload()
{
    static MemoryTrace trace = [] {
        WorkloadParams p;
        p.name = "tage-unit";
        p.seed = 96;
        p.staticBranches = 150;
        p.functionCount = 15;
        p.targetConditionals = 30'000;
        return generateTrace(p);
    }();
    return trace;
}

TageParams
smallParams()
{
    TageParams p;
    p.baseBits = 6;
    p.entryBits = 6;
    p.tagBits = 8;
    p.histories = {4, 8, 16, 32};
    return p;
}

} // namespace

TEST(TageZoo, FreshModelFallsThroughToBase)
{
    TageModel m(smallParams());
    // No tagged entry is valid yet, so the base table provides, and the
    // providing base counter has never been trained: a textbook cold
    // (first-touch) prediction.
    TageStep s = m.step(0x40, 0, true);
    EXPECT_TRUE(s.prediction); // TwoBitCounter boots weakly taken
    EXPECT_EQ(s.provider, 0u);
    EXPECT_TRUE(s.providerWasFresh);
    EXPECT_FALSE(s.allocated); // correct prediction: no allocation
    EXPECT_EQ(m.updates(), 1u);
}

TEST(TageZoo, MispredictAllocatesWeaklyBiasedEntry)
{
    TageModel m(smallParams());
    const Addr pc = 0x40;
    // Base predicts taken; a not-taken outcome mispredicts and must
    // allocate in the first (shortest-history) component, weakly biased
    // toward the actual outcome and not-useful.
    TageStep s = m.step(pc, 0, false);
    EXPECT_TRUE(s.allocated);
    const std::size_t idx = m.taggedIndex(0, pc, 0);
    const TageModel::TaggedEntry &e = m.entryAt(0, idx);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.tag, m.taggedTag(0, pc, 0));
    EXPECT_EQ(e.ctr.raw(), 3u); // weakly not-taken
    EXPECT_EQ(e.useful, 0u);

    // A taken-side mispredict allocates weakly taken (ctr = 4).  After
    // the first step the base counter at this pc sits at weakly
    // not-taken, so a taken outcome under a fresh history mispredicts.
    TageStep s2 = m.step(pc, 1, true);
    ASSERT_TRUE(s2.allocated);
    const std::size_t idx2 = m.taggedIndex(0, pc, 1);
    EXPECT_EQ(m.entryAt(0, idx2).ctr.raw(), 4u); // weakly taken
}

TEST(TageZoo, AllocatedEntryBecomesProvider)
{
    TageModel m(smallParams());
    const Addr pc = 0x40;
    ASSERT_TRUE(m.step(pc, 0, false).allocated);
    // Same pc and history: the allocated component-1 entry now matches
    // and must provide (1-based; 0 would mean the base table).
    TageStep s = m.step(pc, 0, false);
    EXPECT_EQ(s.provider, 1u);
    EXPECT_FALSE(s.providerWasFresh);
    EXPECT_FALSE(s.prediction); // it was allocated weakly not-taken
}

TEST(TageZoo, UsefulBitTracksProviderVersusAltpred)
{
    // Scripted walk that drives the provider chain up to component 3
    // and checks the useful counter moves ONLY when the provider and
    // its altpred disagree: +1 when the provider is right, -1 when it
    // is wrong.
    TageModel m(smallParams());
    const Addr pc = 0x40;

    // s1: base mispredicts (not taken), comp 1 allocated at ctr 3.
    ASSERT_TRUE(m.step(pc, 0, false).allocated);
    // s2: comp 1 provides "not taken" (ctr 3), outcome taken:
    // mispredict trains it to 4 and allocates comp 2 at ctr 4.
    ASSERT_TRUE(m.step(pc, 0, true).allocated);
    // s3: comp 2 provides taken, altpred (comp 1, ctr 4) also taken --
    // agreement, so no useful movement; correct, ctr 4 -> 5.
    ASSERT_EQ(m.step(pc, 0, true).provider, 2u);
    // s4: comp 2 provides taken (ctr 5), outcome not taken: mispredict
    // trains 5 -> 4 and allocates comp 3 at ctr 3.
    ASSERT_TRUE(m.step(pc, 0, false).allocated);

    const std::size_t idx = m.taggedIndex(2, pc, 0);
    ASSERT_EQ(m.entryAt(2, idx).useful, 0u);

    // s5: comp 3 provides "not taken" (ctr 3) while its altpred
    // (comp 2, ctr 4) says taken; outcome not taken: the provider beat
    // its altpred, useful 0 -> 1.
    TageStep s5 = m.step(pc, 0, false);
    EXPECT_EQ(s5.provider, 3u);
    EXPECT_FALSE(s5.prediction);
    EXPECT_EQ(m.entryAt(2, idx).useful, 1u);

    // s6: same disagreement, outcome taken: the provider lost,
    // useful 1 -> 0, and the mispredict allocates component 4.
    TageStep s6 = m.step(pc, 0, true);
    EXPECT_EQ(s6.provider, 3u);
    EXPECT_TRUE(s6.allocated);
    EXPECT_EQ(m.entryAt(2, idx).useful, 0u);
}

TEST(TageZoo, UsefulEntriesAgeInsteadOfBeingStolen)
{
    // Single tagged component, 2 entries, 2-bit history: h=0 and h=3
    // fold to the SAME index with DIFFERENT tags, so we can stage a
    // tag mismatch against a useful entry.  The allocation rule must
    // then age (decrement) the entry, not steal it; once aged to zero
    // the next mispredict may steal it.
    TageParams p;
    p.baseBits = 1;
    p.entryBits = 1;
    p.tagBits = 2;
    p.histories = {2};
    TageModel m(p);
    const Addr pc = 0x40;
    const std::size_t idx = m.taggedIndex(0, pc, 0);
    ASSERT_EQ(m.taggedIndex(0, pc, 3), idx);
    ASSERT_NE(m.taggedTag(0, pc, 3), m.taggedTag(0, pc, 0));

    // Build a useful entry under h=0: allocate, train to taken, then
    // let it beat the base altpred once.
    ASSERT_TRUE(m.step(pc, 0, false).allocated); // ctr 3, tag(h=0)
    ASSERT_EQ(m.step(pc, 0, true).provider, 1u); // ctr 3 -> 4
    TageStep win = m.step(pc, 0, true);          // provider taken,
    ASSERT_TRUE(win.prediction);                 // base altpred not
    ASSERT_EQ(m.entryAt(0, idx).useful, 1u);     // taken: useful 0->1

    // h=3 maps to the same slot with a different tag: no provider, the
    // base mispredicts, and the only candidate is valid AND useful, so
    // the allocator must decrement it and allocate nothing.
    TageStep aged = m.step(pc, 3, true);
    EXPECT_EQ(aged.provider, 0u);
    EXPECT_FALSE(aged.allocated);
    EXPECT_EQ(m.entryAt(0, idx).useful, 0u);
    EXPECT_EQ(m.entryAt(0, idx).tag, m.taggedTag(0, pc, 0)) <<
        "a useful entry must not be stolen";

    // Now unprotected: the next mispredict under h=3 steals the slot.
    TageStep stolen = m.step(pc, 3, false);
    EXPECT_TRUE(stolen.allocated);
    EXPECT_EQ(m.entryAt(0, idx).tag, m.taggedTag(0, pc, 3));
    EXPECT_EQ(m.entryAt(0, idx).ctr.raw(), 3u);
    EXPECT_EQ(m.entryAt(0, idx).useful, 0u);
}

TEST(TageZoo, ResetRestoresColdState)
{
    TageModel m(smallParams());
    for (int i = 0; i < 32; ++i)
        m.step(0x40 + 4 * (i % 5), static_cast<std::uint64_t>(i), i % 3 == 0);
    ASSERT_GT(m.updates(), 0u);
    m.reset();
    EXPECT_EQ(m.updates(), 0u);
    TageStep s = m.step(0x40, 0, true);
    EXPECT_EQ(s.provider, 0u);
    EXPECT_TRUE(s.providerWasFresh);
}

TEST(TageZooSweep, ModelReplayMatchesOnlinePredictor)
{
    // The sweep engine replays a TageModel against the prepared trace's
    // precomputed global history; the online TagePredictor maintains
    // its own HistoryRegister.  Both paths must produce the same
    // misprediction rate.
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    ConfigResult fast = simulateConfig(prepared, SchemeKind::Tage,
                                       6, 6, o);

    TagePredictor online(tageSweepParams(6, 6, o));
    sharedWorkload().reset();
    double online_misp = runPredictor(sharedWorkload(), online).mispRate();
    EXPECT_NEAR(fast.mispRate, online_misp, 1e-12);
}

TEST(TageZooSweep, AxisMappingAndOptionsReachTheModel)
{
    SweepOptions o;
    o.tageTagBits = 10;
    o.tageHistories = {2, 6, 30};
    TageParams p = tageSweepParams(7, 5, o);
    EXPECT_EQ(p.entryBits, 7u); // rows = per-component entries
    EXPECT_EQ(p.baseBits, 5u);  // cols = base table
    EXPECT_EQ(p.tagBits, 10u);
    EXPECT_EQ(p.histories, (std::vector<unsigned>{2, 6, 30}));
}

TEST(TageZooSweep, PlanSkipsDegenerateGeometries)
{
    // A TAGE point needs >= 1 bit on both axes; the planner must drop
    // the degenerate all-rows / all-cols splits instead of asserting.
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 6;
    for (const ConfigJob &job : planSweep(SchemeKind::Tage, o)) {
        EXPECT_GE(job.rowBits, 1u);
        EXPECT_GE(job.colBits, 1u);
    }
    for (const ConfigJob &job : planSweep(SchemeKind::Perceptron, o)) {
        EXPECT_GE(job.rowBits, 1u);
        EXPECT_LE(job.rowBits, 64u);
    }
}

TEST(TageZooInterference, PartitionCoversEverySharedMispredict)
{
    // The three-C invariant: every shared mispredict is exactly one of
    // aliasing (destructive), cold, or capacity.
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    InterferenceResult r = analyzeInterference(
        prepared, SchemeKind::Tage, 5, 5, o);
    EXPECT_EQ(r.instances, prepared.size());
    EXPECT_EQ(r.sharedMispredicts,
              r.aliasingMispredicts() + r.coldMispredicts +
                  r.capacityMispredicts);
    EXPECT_NEAR(r.aliasingRate() + r.coldRate() + r.capacityRate(),
                r.sharedMispRate(), 1e-12);
}

TEST(TageZooInterference, SharedRateMatchesSweepPoint)
{
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    ConfigResult sweep = simulateConfig(prepared, SchemeKind::Tage,
                                        6, 6, o);
    InterferenceResult r = analyzeInterference(
        prepared, SchemeKind::Tage, 6, 6, o);
    EXPECT_NEAR(r.sharedMispRate(), sweep.mispRate, 1e-12);
}

TEST(TageZooInterference, TaggingConvertsAliasingIntoColdMisses)
{
    // The point of the re-study: at equal storage pressure the tagged
    // scheme shows (much) less destructive aliasing than an untagged
    // global-history scheme, because a tag mismatch falls through to a
    // shorter table instead of training a stranger's counter -- those
    // mispredictions surface as cold/capacity misses instead.
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    InterferenceResult tage = analyzeInterference(
        prepared, SchemeKind::Tage, 4, 4, o);
    InterferenceResult gshare = analyzeInterference(
        prepared, SchemeKind::Gshare, 6, 0, o);
    EXPECT_LT(tage.aliasingRate(), gshare.aliasingRate());
    EXPECT_GT(tage.coldMispredicts, 0u);
}

TEST(TageZooTelemetry, BatchedSweepReportsModelGroupCounters)
{
    // TAGE sweeps now run the batched model-lane engine by default:
    // the jobs land in model groups (not 2-bit fused groups, not the
    // per-config fallback), and the telemetry reports the model-side
    // population -- groups, lanes, batches, blocks -- with measured
    // busy/span seconds and no NaNs from the zero-lane 2-bit
    // accessors.
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 6;
    o.maxTotalBits = 8;
    const std::size_t planned =
        planSweep(SchemeKind::Tage, o).size();
    SweepResult r = sweepScheme(prepared, SchemeKind::Tage, o);

    EXPECT_EQ(r.kernel.fusedGroups, 0u);
    EXPECT_EQ(r.kernel.fallbackJobs, 0u);
    EXPECT_EQ(r.kernel.lanes, 0u);
    EXPECT_GT(r.kernel.modelGroups, 0u);
    EXPECT_EQ(r.kernel.modelLanes, planned);
    EXPECT_GT(r.kernel.modelBatches, 0u);
    EXPECT_GT(r.kernel.blocksReplayed, 0u);
    EXPECT_EQ(r.kernel.laneBatches, 0u);
    EXPECT_GT(r.kernel.shardWorkers, 0u);
    EXPECT_GE(r.kernel.busySeconds, 0.0);
    EXPECT_GE(r.kernel.spanSeconds, 0.0);

    const double util = r.kernel.workerUtilization();
    EXPECT_FALSE(std::isnan(util));
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
    EXPECT_FALSE(std::isnan(r.kernel.lanesPerGroup()));
    EXPECT_EQ(r.kernel.lanesPerGroup(), 0.0);
    EXPECT_GT(r.kernel.modelLanesPerGroup(), 0.0);
    EXPECT_FALSE(std::isnan(r.kernel.hotBytesPerBranch()));
    EXPECT_EQ(r.kernel.hotBytesPerBranch(), 0.0);

    // The misprediction surface is populated; the aliasing surfaces
    // stay all-zero (analyzeInterference owns TAGE's aliasing story).
    ASSERT_FALSE(r.misprediction.tiers().empty());
    for (const auto &tier : r.aliasing.tiers())
        for (const auto &pt : tier.points)
            EXPECT_EQ(pt.value, 0.0);
}

TEST(TageZooTelemetry, UnfusedSweepStillReportsFallbackShape)
{
    // fuseJobs = false is the per-config baseline the perf bench
    // measures against: every zoo job becomes its own fallback group
    // and the model-group counters stay zero.
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 6;
    o.maxTotalBits = 7;
    o.fuseJobs = false;
    SweepResult r = sweepScheme(prepared, SchemeKind::Tage, o);

    EXPECT_EQ(r.kernel.fusedGroups, 0u);
    EXPECT_GT(r.kernel.fallbackJobs, 0u);
    EXPECT_EQ(r.kernel.modelGroups, 0u);
    EXPECT_EQ(r.kernel.modelLanes, 0u);
    EXPECT_EQ(r.kernel.modelBatches, 0u);
    EXPECT_GT(r.kernel.shardWorkers, 0u);
    EXPECT_EQ(r.kernel.modelLanesPerGroup(), 0.0);
}

TEST(TageZooTelemetry, ZeroedCountersProduceFiniteRatios)
{
    // A cache hit reports an all-zero KernelTelemetry; every derived
    // ratio must degrade to 0.0 rather than dividing by zero.
    KernelTelemetry k;
    EXPECT_EQ(k.lanesPerGroup(), 0.0);
    EXPECT_EQ(k.modelLanesPerGroup(), 0.0);
    EXPECT_EQ(k.segmentsPerGroup(), 0.0);
    EXPECT_EQ(k.shardsPerGroup(), 0.0);
    EXPECT_EQ(k.workerUtilization(), 0.0);
    EXPECT_EQ(k.hotBytesPerBranch(), 0.0);
}

/**
 * @file
 * Unit tests for the lane-batched SIMD layer: every operation on every
 * dispatch target this host supports must be bit-identical to a plain
 * scalar loop, on the boundary outcome patterns (all zeros, all ones,
 * alternating, saturating runs pinning counters at 0b00 and 0b11) and
 * under seeded fuzz across lane counts, masks and table sizes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "common/packed_pht.hh"
#include "common/random.hh"
#include "common/simd.hh"

using namespace bpsim;

namespace {

/** Fused record: outcome in bit 31, table index bits in 0..30. */
std::uint32_t
record(std::uint32_t index, bool taken)
{
    return (static_cast<std::uint32_t>(taken) << 31) |
           (index & 0x7FFFFFFFu);
}

struct LaneSetup
{
    std::vector<PackedPht> tables;
    LaneBatch batch;

    /** One lane per entry of @p counter_bits, each table 2^bits. */
    explicit LaneSetup(const std::vector<unsigned> &counter_bits)
    {
        tables.reserve(counter_bits.size());
        batch.lanes = static_cast<unsigned>(counter_bits.size());
        for (unsigned l = 0; l < batch.lanes; ++l) {
            tables.emplace_back(std::size_t{1} << counter_bits[l]);
            batch.totalMask[l] =
                static_cast<std::uint32_t>(mask(counter_bits[l]));
            batch.pht[l] = tables[l].data();
        }
    }
};

/** The independent reference loop the kernels are held to. */
void
referenceReplay(const std::vector<std::uint32_t> &records,
                LaneSetup &setup)
{
    for (unsigned l = 0; l < setup.batch.lanes; ++l) {
        for (std::uint32_t rc : records) {
            setup.batch.misses[l] += PackedPht::predictAndUpdateRaw(
                setup.batch.pht[l], rc & setup.batch.totalMask[l],
                rc >> 31);
        }
    }
}

/** Run @p records on @p target and on the reference; compare all
 *  counter states and miss counts exactly. */
void
expectBitIdentical(SimdTarget target,
                   const std::vector<std::uint32_t> &records,
                   const std::vector<unsigned> &counter_bits,
                   const char *what)
{
    LaneSetup actual(counter_bits);
    LaneSetup expected(counter_bits);
    replayLaneBatch(target, records.data(), records.size(),
                    actual.batch);
    referenceReplay(records, expected);

    for (unsigned l = 0; l < actual.batch.lanes; ++l) {
        EXPECT_EQ(actual.batch.misses[l], expected.batch.misses[l])
            << what << ": " << simdTargetName(target) << " lane " << l
            << " miss count";
        ASSERT_EQ(actual.tables[l].size(), expected.tables[l].size());
        for (std::size_t i = 0; i < actual.tables[l].size(); ++i) {
            ASSERT_EQ(actual.tables[l].counter(i),
                      expected.tables[l].counter(i))
                << what << ": " << simdTargetName(target) << " lane "
                << l << " counter " << i;
        }
    }
}

/** Mixed lane widths exercising every batch position. */
const std::vector<unsigned> kMixedLanes = {4, 6, 8, 5, 10, 7, 9, 12};

} // namespace

TEST(Simd, TargetNames)
{
    EXPECT_STREQ(simdTargetName(SimdTarget::Auto), "auto");
    EXPECT_STREQ(simdTargetName(SimdTarget::Scalar), "scalar");
    EXPECT_STREQ(simdTargetName(SimdTarget::SSE2), "sse2");
    EXPECT_STREQ(simdTargetName(SimdTarget::AVX2), "avx2");
    EXPECT_STREQ(simdTargetName(SimdTarget::AVX512), "avx512");
}

TEST(Simd, ParseTargetNameRoundTripsEveryName)
{
    for (SimdTarget t :
         {SimdTarget::Auto, SimdTarget::Scalar, SimdTarget::SSE2,
          SimdTarget::AVX2, SimdTarget::AVX512}) {
        Result<SimdTarget> parsed =
            parseSimdTargetName(simdTargetName(t));
        ASSERT_TRUE(parsed.ok()) << simdTargetName(t);
        EXPECT_EQ(parsed.value(), t);
    }
}

TEST(Simd, ParseTargetNameRejectsUnknownWithPinnedMessage)
{
    Result<SimdTarget> parsed = parseSimdTargetName("sse9");
    ASSERT_FALSE(parsed.ok());
    // The message is a user-facing contract (boundaries print it
    // verbatim on a typo'd BPSIM_SIMD): it must name the offender and
    // enumerate the accepted spellings.
    EXPECT_EQ(parsed.error().message(),
              "unrecognised SIMD target 'sse9' (expected scalar, "
              "sse2, avx2, avx512 or auto)");
    EXPECT_FALSE(parseSimdTargetName("").ok());
    EXPECT_FALSE(parseSimdTargetName("AVX2").ok());
}

TEST(Simd, EnvStatusFlagsMalformedOverride)
{
    // Preserve whatever the surrounding test run pinned.
    const char *prev = std::getenv("BPSIM_SIMD");
    const std::string saved = prev ? prev : "";

    ::unsetenv("BPSIM_SIMD");
    EXPECT_TRUE(simdEnvStatus().ok());

    ::setenv("BPSIM_SIMD", "scalar", 1);
    EXPECT_TRUE(simdEnvStatus().ok());

    ::setenv("BPSIM_SIMD", "neon", 1);
    Status bad = simdEnvStatus();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message(),
              "invalid BPSIM_SIMD value: unrecognised SIMD target "
              "'neon' (expected scalar, sse2, avx2, avx512 or auto)");

    if (prev)
        ::setenv("BPSIM_SIMD", saved.c_str(), 1);
    else
        ::unsetenv("BPSIM_SIMD");
}

TEST(Simd, ScalarAlwaysSupportedAndResolveNeverReturnsAuto)
{
    EXPECT_TRUE(simdTargetSupported(SimdTarget::Scalar));
    EXPECT_TRUE(simdTargetSupported(SimdTarget::Auto));
    EXPECT_NE(resolveSimdTarget(SimdTarget::Auto), SimdTarget::Auto);
    EXPECT_EQ(resolveSimdTarget(SimdTarget::Scalar),
              SimdTarget::Scalar);
    // Detection returns a concrete, supported target.
    EXPECT_NE(detectSimdTarget(), SimdTarget::Auto);
    EXPECT_TRUE(simdTargetSupported(detectSimdTarget()));
}

TEST(Simd, SupportedTargetsResolveToThemselves)
{
    const std::vector<SimdTarget> targets = supportedSimdTargets();
    ASSERT_FALSE(targets.empty());
    EXPECT_EQ(targets.front(), SimdTarget::Scalar);
    for (SimdTarget t : targets) {
        EXPECT_TRUE(simdTargetSupported(t));
        // An explicit supported request is honoured exactly (it must
        // beat any BPSIM_SIMD override in the environment too).
        EXPECT_EQ(resolveSimdTarget(t), t);
    }
}

TEST(Simd, UnsupportedRequestsClampDownNotUp)
{
    // On hosts without AVX2 the request clamps toward scalar; on hosts
    // with it, the request is honoured.  Either way the result is
    // supported and never wider than asked.
    const SimdTarget resolved = resolveSimdTarget(SimdTarget::AVX2);
    EXPECT_TRUE(simdTargetSupported(resolved));
    EXPECT_TRUE(resolved == SimdTarget::AVX2 ||
                resolved == SimdTarget::SSE2 ||
                resolved == SimdTarget::Scalar);
    if (simdTargetSupported(SimdTarget::AVX2))
        EXPECT_EQ(resolved, SimdTarget::AVX2);
}

TEST(Simd, BoundaryPatternsBitIdenticalOnEveryTarget)
{
    // The ISSUE's boundary set.  "Saturating" drives one index with a
    // constant outcome so counters pin at 0b11 (taken) / 0b00 (not
    // taken) and every extra update exercises the saturation clamp.
    constexpr std::size_t n = 1024;
    std::vector<std::uint32_t> all_zeros(n, record(0, false));
    std::vector<std::uint32_t> all_ones(n, record(0x7FFFFFFFu, true));
    std::vector<std::uint32_t> alternating(n);
    std::vector<std::uint32_t> saturate_taken(n);
    std::vector<std::uint32_t> saturate_not_taken(n);
    for (std::size_t i = 0; i < n; ++i) {
        alternating[i] = record(
            (i & 1) ? 0x55555555u : 0x2AAAAAAAu, (i & 3) < 2);
        saturate_taken[i] = record(7, true);
        saturate_not_taken[i] = record(7, false);
    }

    for (SimdTarget target : supportedSimdTargets()) {
        expectBitIdentical(target, all_zeros, kMixedLanes,
                           "all-zeros");
        expectBitIdentical(target, all_ones, kMixedLanes, "all-ones");
        expectBitIdentical(target, alternating, kMixedLanes,
                           "alternating");
        expectBitIdentical(target, saturate_taken, kMixedLanes,
                           "saturating at 0b11");
        expectBitIdentical(target, saturate_not_taken, kMixedLanes,
                           "saturating at 0b00");
    }
}

TEST(Simd, SaturatedCountersLandOnTheRail)
{
    // Beyond agreeing with the reference, the saturating runs must
    // actually end on the rails -- guards against a reference bug
    // cancelling a kernel bug.
    for (SimdTarget target : supportedSimdTargets()) {
        std::vector<std::uint32_t> up(64, record(3, true));
        std::vector<std::uint32_t> down(64, record(3, false));
        LaneSetup taken({4, 4});
        LaneSetup not_taken({4, 4});
        replayLaneBatch(target, up.data(), up.size(), taken.batch);
        replayLaneBatch(target, down.data(), down.size(),
                        not_taken.batch);
        for (unsigned l = 0; l < 2; ++l) {
            EXPECT_EQ(taken.tables[l].counter(3), 3u)
                << simdTargetName(target);
            EXPECT_EQ(not_taken.tables[l].counter(3), 0u)
                << simdTargetName(target);
        }
    }
}

TEST(Simd, PartialBatchesLeaveTrailingLanesUntouched)
{
    // Vector kernels pad to their native width internally; the padding
    // must never leak into the caller's unused lane slots.
    std::vector<std::uint32_t> records;
    for (std::uint32_t i = 0; i < 500; ++i)
        records.push_back(record(i * 37, (i % 3) == 0));

    for (SimdTarget target : supportedSimdTargets()) {
        for (unsigned lanes = 1; lanes <= LaneBatch::kMaxLanes;
             ++lanes) {
            std::vector<unsigned> bits(lanes, 6u);
            expectBitIdentical(target, records, bits, "partial batch");

            LaneSetup setup(bits);
            replayLaneBatch(target, records.data(), records.size(),
                            setup.batch);
            for (unsigned l = lanes; l < LaneBatch::kMaxLanes; ++l) {
                EXPECT_EQ(setup.batch.misses[l], 0u)
                    << simdTargetName(target) << " lanes=" << lanes;
                EXPECT_EQ(setup.batch.pht[l], nullptr);
            }
        }
    }
}

TEST(Simd, FuzzedReplayBitIdenticalOnEveryTarget)
{
    Pcg32 rng(0x51D0CAFEULL, 23);
    for (int round = 0; round < 12; ++round) {
        const unsigned lanes =
            1 + static_cast<unsigned>(rng.nextBounded(
                    LaneBatch::kMaxLanes));
        std::vector<unsigned> bits;
        for (unsigned l = 0; l < lanes; ++l)
            bits.push_back(
                2 + static_cast<unsigned>(rng.nextBounded(12)));

        const std::size_t n = 500 + rng.nextBounded(4000);
        std::vector<std::uint32_t> records;
        records.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            records.push_back(record(
                static_cast<std::uint32_t>(rng.next()),
                rng.nextBounded(2) != 0));

        for (SimdTarget target : supportedSimdTargets())
            expectBitIdentical(target, records, bits, "fuzz");
    }
}

TEST(Simd, GatherScatterRoundTripOnEveryTarget)
{
    Pcg32 rng(0x6A77E12BULL, 5);
    std::vector<std::vector<std::uint8_t>> buffers;
    for (unsigned l = 0; l < LaneBatch::kMaxLanes; ++l) {
        std::vector<std::uint8_t> buf(
            256 + PackedPht::kGatherSlack);
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(rng.next());
        buffers.push_back(std::move(buf));
    }

    for (SimdTarget target : supportedSimdTargets()) {
        for (unsigned lanes = 1; lanes <= LaneBatch::kMaxLanes;
             ++lanes) {
            const std::uint8_t *srcs[LaneBatch::kMaxLanes];
            std::uint8_t *dsts[LaneBatch::kMaxLanes];
            std::uint32_t idx[LaneBatch::kMaxLanes];
            std::uint8_t got[LaneBatch::kMaxLanes];
            for (unsigned l = 0; l < lanes; ++l) {
                srcs[l] = buffers[l].data();
                dsts[l] = buffers[l].data();
                idx[l] = static_cast<std::uint32_t>(
                    rng.nextBounded(256));
            }

            gatherLaneBytes(target, srcs, idx, lanes, got);
            for (unsigned l = 0; l < lanes; ++l) {
                EXPECT_EQ(got[l], buffers[l][idx[l]])
                    << simdTargetName(target) << " lane " << l;
            }

            // Scatter complements back, gather again: round trip.
            std::uint8_t flipped[LaneBatch::kMaxLanes];
            for (unsigned l = 0; l < lanes; ++l)
                flipped[l] = static_cast<std::uint8_t>(~got[l]);
            scatterLaneBytes(target, dsts, idx, lanes, flipped);
            gatherLaneBytes(target, srcs, idx, lanes, got);
            for (unsigned l = 0; l < lanes; ++l) {
                EXPECT_EQ(got[l], flipped[l])
                    << simdTargetName(target) << " lane " << l;
            }
        }
    }
}

TEST(Simd, GatherReachesTheLastTableByte)
{
    // The highest counter byte is exactly where the AVX2 4-byte
    // gather needs PackedPht::kGatherSlack padding; read it on every
    // target to prove the slack is there (ASan would flag a miss).
    PackedPht pht(64); // 16 counter bytes, slack after
    std::uint8_t *base = pht.data();
    base[15] = 0x5C;
    for (SimdTarget target : supportedSimdTargets()) {
        const std::uint8_t *bases[1] = {base};
        const std::uint32_t idx[1] = {15};
        std::uint8_t out[1] = {0};
        gatherLaneBytes(target, bases, idx, 1, out);
        EXPECT_EQ(out[0], 0x5C) << simdTargetName(target);
    }
}

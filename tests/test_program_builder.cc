/**
 * @file
 * Tests for the synthetic program builder: structural invariants over
 * many seeds, determinism, and parameter effects.
 */

#include <gtest/gtest.h>

#include "workload/builder.hh"

using namespace bpsim;

namespace {

WorkloadParams
smallParams(std::uint64_t seed = 1)
{
    WorkloadParams p;
    p.name = "unit";
    p.seed = seed;
    p.staticBranches = 120;
    p.functionCount = 12;
    p.targetConditionals = 10'000;
    return p;
}

} // namespace

TEST(ProgramBuilder, VerifyPassesOnBuiltProgram)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    prog.verify(); // would panic on inconsistency
    SUCCEED();
}

TEST(ProgramBuilder, FunctionCountHonoured)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    EXPECT_EQ(prog.functions.size(), 12u);
}

TEST(ProgramBuilder, StaticBranchCountNearTarget)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    EXPECT_GE(prog.staticBranchCount(), 60u);
    EXPECT_LE(prog.staticBranchCount(), 240u);
}

TEST(ProgramBuilder, DeterministicForSameSeed)
{
    SyntheticProgram a = ProgramBuilder(smallParams(7)).build();
    SyntheticProgram b = ProgramBuilder(smallParams(7)).build();
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        EXPECT_EQ(a.code[i].op, b.code[i].op) << "slot " << i;
        EXPECT_EQ(a.code[i].target, b.code[i].target) << "slot " << i;
        EXPECT_EQ(a.code[i].site, b.code[i].site) << "slot " << i;
    }
    ASSERT_EQ(a.sites.size(), b.sites.size());
}

TEST(ProgramBuilder, DifferentSeedsDiffer)
{
    SyntheticProgram a = ProgramBuilder(smallParams(1)).build();
    SyntheticProgram b = ProgramBuilder(smallParams(2)).build();
    bool differs = a.code.size() != b.code.size();
    if (!differs) {
        for (std::size_t i = 0; i < a.code.size(); ++i) {
            if (a.code[i].op != b.code[i].op ||
                a.code[i].target != b.code[i].target) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(ProgramBuilder, EveryFunctionEndsWithRet)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    for (const auto &fn : prog.functions) {
        ASSERT_GT(fn.end, fn.entry);
        EXPECT_EQ(prog.code[fn.end - 1].op, Op::Ret) << fn.name;
    }
}

TEST(ProgramBuilder, FunctionsTileTheImage)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    std::uint32_t expected_start = 0;
    for (const auto &fn : prog.functions) {
        EXPECT_EQ(fn.entry, expected_start) << fn.name;
        expected_start = fn.end;
    }
    EXPECT_EQ(expected_start, prog.code.size());
}

TEST(ProgramBuilder, CallsOnlyTargetEarlierFunctions)
{
    // The call graph must be a DAG (no recursion): a call in function f
    // may only target a function with a smaller id.
    SyntheticProgram prog = ProgramBuilder(smallParams(3)).build();
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        const auto &fn = prog.functions[f];
        for (std::uint32_t i = fn.entry; i < fn.end; ++i) {
            if (prog.code[i].op == Op::Call)
                EXPECT_LT(prog.code[i].target, f) << "slot " << i;
        }
    }
}

TEST(ProgramBuilder, BranchTargetsStayInsideOwnFunction)
{
    SyntheticProgram prog = ProgramBuilder(smallParams(5)).build();
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        const auto &fn = prog.functions[f];
        for (std::uint32_t i = fn.entry; i < fn.end; ++i) {
            const Insn &insn = prog.code[i];
            if (insn.op == Op::Cond || insn.op == Op::Jump) {
                EXPECT_GE(insn.target, fn.entry) << "slot " << i;
                EXPECT_LT(insn.target, fn.end) << "slot " << i;
            }
        }
    }
}

TEST(ProgramBuilder, EverySiteHasAPredicate)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    for (const auto &site : prog.sites)
        EXPECT_NE(site.predicate, nullptr);
}

TEST(ProgramBuilder, KernelFractionZeroMeansNoKernelCode)
{
    WorkloadParams p = smallParams();
    p.kernelFraction = 0.0;
    SyntheticProgram prog = ProgramBuilder(p).build();
    for (const auto &fn : prog.functions)
        EXPECT_FALSE(fn.kernel);
}

TEST(ProgramBuilder, KernelFractionOneMeansAllKernel)
{
    WorkloadParams p = smallParams();
    p.kernelFraction = 1.0;
    SyntheticProgram prog = ProgramBuilder(p).build();
    for (const auto &fn : prog.functions)
        EXPECT_TRUE(fn.kernel);
}

TEST(ProgramBuilder, HotnessIsPositiveAndZipfShaped)
{
    SyntheticProgram prog = ProgramBuilder(smallParams()).build();
    double total = 0;
    double max_h = 0;
    for (const auto &fn : prog.functions) {
        EXPECT_GT(fn.hotness, 0.0);
        total += fn.hotness;
        max_h = std::max(max_h, fn.hotness);
    }
    // Exactly one function holds the rank-0 weight of 1.0.
    EXPECT_DOUBLE_EQ(max_h, 1.0);
    EXPECT_GT(total, 1.0);
}

TEST(ProgramBuilder, ZeroBlockLenStillBuildsValidProgram)
{
    WorkloadParams p = smallParams();
    p.meanBlockLen = 0.0;
    SyntheticProgram prog = ProgramBuilder(p).build();
    prog.verify();
    EXPECT_GT(prog.staticBranchCount(), 0u);
}

TEST(ProgramBuilder, SingleFunctionProgram)
{
    WorkloadParams p = smallParams();
    p.functionCount = 1;
    p.staticBranches = 10;
    SyntheticProgram prog = ProgramBuilder(p).build();
    prog.verify();
    EXPECT_EQ(prog.functions.size(), 1u);
    // Function 0 can call nothing.
    for (const auto &insn : prog.code)
        EXPECT_NE(insn.op, Op::Call);
}

TEST(ProgramBuilder, AddressesAreWordAlignedAndSegmented)
{
    WorkloadParams p = smallParams();
    p.kernelFraction = 0.5;
    SyntheticProgram prog = ProgramBuilder(p).build();
    EXPECT_EQ(prog.addressOf(0, false), SyntheticProgram::userBase);
    EXPECT_EQ(prog.addressOf(0, true),
              SyntheticProgram::kernelBase + SyntheticProgram::userBase);
    EXPECT_EQ(prog.addressOf(3, false) % 4, 0u);
}

TEST(WorkloadParamsDeathTest, InvalidMixRejected)
{
    WorkloadParams p;
    p.fracPattern = 0.9;
    p.fracCorrelated = 0.9;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "behaviour-mix fractions exceed 1");
}

TEST(WorkloadParamsDeathTest, ZeroStaticsRejected)
{
    WorkloadParams p;
    p.staticBranches = 0;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "staticBranches");
}

TEST(WorkloadParamsDeathTest, BadProbabilityRejected)
{
    WorkloadParams p;
    p.loopFraction = 1.5;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "probability parameter");
}

TEST(WorkloadParamsDeathTest, ReversedBiasRangeRejected)
{
    WorkloadParams p;
    p.highBiasMin = 0.99;
    p.highBiasMax = 0.95;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "bias ranges reversed");
}

/** Structural invariants over a spread of seeds. */
class BuilderSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuilderSeedSweep, VerifiesAndCoversConstructs)
{
    WorkloadParams p = smallParams(GetParam());
    p.staticBranches = 200;
    p.functionCount = 20;
    SyntheticProgram prog = ProgramBuilder(p).build();
    prog.verify();

    // Expect all structural opcode kinds to appear in a 200-site
    // program.
    bool saw_cond = false, saw_jump = false, saw_ret = false;
    for (const auto &insn : prog.code) {
        saw_cond |= insn.op == Op::Cond;
        saw_jump |= insn.op == Op::Jump;
        saw_ret |= insn.op == Op::Ret;
    }
    EXPECT_TRUE(saw_cond);
    EXPECT_TRUE(saw_jump);
    EXPECT_TRUE(saw_ret);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

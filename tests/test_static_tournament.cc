/**
 * @file
 * Tests for the static baseline predictors and the McFarling tournament
 * combiner.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/static_pred.hh"
#include "predictor/tournament.hh"
#include "predictor/two_level.hh"

using namespace bpsim;

namespace {

BranchRecord
cond(Addr pc, bool taken, Addr target)
{
    BranchRecord r;
    r.pc = pc;
    r.target = target;
    r.type = BranchType::Conditional;
    r.taken = taken;
    return r;
}

} // namespace

TEST(FixedPredictor, AlwaysTaken)
{
    FixedPredictor p(true);
    EXPECT_TRUE(p.onBranch(cond(0x100, false, 0x80)));
    EXPECT_TRUE(p.onBranch(cond(0x200, true, 0x300)));
    EXPECT_EQ(p.name(), "always-taken");
}

TEST(FixedPredictor, AlwaysNotTaken)
{
    FixedPredictor p(false);
    EXPECT_FALSE(p.onBranch(cond(0x100, true, 0x80)));
    EXPECT_EQ(p.name(), "always-not-taken");
}

TEST(FixedPredictor, ResetIsANoOp)
{
    FixedPredictor p(true);
    p.onBranch(cond(0x100, false, 0x80));
    p.reset();
    EXPECT_TRUE(p.onBranch(cond(0x100, false, 0x80)));
}

TEST(Btfnt, BackwardTakenForwardNot)
{
    BtfntPredictor p;
    EXPECT_TRUE(p.onBranch(cond(0x200, true, 0x100)));  // backward
    EXPECT_FALSE(p.onBranch(cond(0x200, true, 0x300))); // forward
    EXPECT_EQ(p.name(), "btfnt");
}

TEST(Btfnt, PredictsLoopsWell)
{
    BtfntPredictor p;
    // A 10-trip bottom-test loop: backward branch taken 9 of 10 times.
    std::uint64_t wrong = 0;
    for (int entry = 0; entry < 50; ++entry) {
        for (int i = 0; i < 9; ++i)
            wrong += p.onBranch(cond(0x400120, true, 0x400100)) != true;
        wrong += p.onBranch(cond(0x400120, false, 0x400100)) != false;
    }
    EXPECT_EQ(wrong, 50u); // only the exits are missed
}

TEST(Tournament, NameAndCounterCount)
{
    TournamentPredictor t(makeAddressIndexed(4), makeGAg(4), 4);
    EXPECT_NE(t.name().find("tournament"), std::string::npos);
    // 16 + 16 component counters + 16 choosers.
    EXPECT_EQ(t.counterCount(), 48u);
}

TEST(Tournament, ConvergesToThePerfectComponent)
{
    // Alternating branch: GAg captures it, a plain counter cannot.
    TournamentPredictor t(makeAddressIndexed(4), makeGAg(4), 4);
    std::uint64_t wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        BranchRecord r = cond(0x400100, i % 2 == 0, 0x400000);
        bool prediction = t.onBranch(r);
        if (i >= 300)
            wrong_late += prediction != r.taken;
    }
    EXPECT_LT(wrong_late, 10u);
    EXPECT_GT(t.secondChosenRate(), 0.4);
}

TEST(Tournament, NeverMuchWorseThanItsBestComponent)
{
    // Mixed stream: an alternating branch (GAg food) plus a strongly
    // biased branch under global-history pollution (bimodal food).
    auto run = [](BranchPredictor &p) {
        Pcg32 rng(3);
        std::uint64_t wrong = 0;
        for (int i = 0; i < 4000; ++i) {
            BranchRecord a =
                cond(0x400100, i % 2 == 0, 0x400000);
            BranchRecord b =
                cond(0x400200, rng.bernoulli(0.97), 0x400800);
            wrong += p.onBranch(a) != a.taken;
            wrong += p.onBranch(b) != b.taken;
        }
        return wrong;
    };

    auto bimodal = makeAddressIndexed(6);
    auto gag = makeGAg(2);
    TournamentPredictor combo(makeAddressIndexed(6), makeGAg(2), 6);

    std::uint64_t w_bim = run(*bimodal);
    std::uint64_t w_gag = run(*gag);
    std::uint64_t w_combo = run(combo);
    std::uint64_t best = std::min(w_bim, w_gag);
    // Chooser training costs a little; it must stay near the best
    // component and far from the worst.
    EXPECT_LE(w_combo, best + best / 2 + 50);
}

TEST(Tournament, ResetClearsChoicesAndComponents)
{
    TournamentPredictor t(makeAddressIndexed(4), makeGAg(4), 4);
    std::uint64_t first = 0, second = 0;
    for (int i = 0; i < 500; ++i) {
        BranchRecord r = cond(0x400100, i % 2 == 0, 0x400000);
        first += t.onBranch(r) != r.taken;
    }
    t.reset();
    EXPECT_DOUBLE_EQ(t.secondChosenRate(), 0.0);
    for (int i = 0; i < 500; ++i) {
        BranchRecord r = cond(0x400100, i % 2 == 0, 0x400000);
        second += t.onBranch(r) != r.taken;
    }
    EXPECT_EQ(first, second);
}

TEST(Tournament, ComponentsAccessible)
{
    TournamentPredictor t(makeAddressIndexed(4), makeGAg(6), 4);
    EXPECT_EQ(t.firstComponent().name(), "addr 2^0 x 2^4");
    EXPECT_EQ(t.secondComponent().name(), "GAs 2^6 x 2^0");
}

TEST(TournamentDeathTest, NullComponentsRejected)
{
    EXPECT_DEATH(TournamentPredictor(nullptr, makeGAg(4), 4),
                 "two components");
}

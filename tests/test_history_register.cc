/**
 * @file
 * Unit tests for the history shift register and the paper's 0xC3FF reset
 * prefix (Section 5 of the paper).
 */

#include <gtest/gtest.h>

#include "common/history_register.hh"

using namespace bpsim;

TEST(HistoryRegister, StartsEmpty)
{
    HistoryRegister h(8);
    EXPECT_EQ(h.value(), 0u);
    EXPECT_EQ(h.width(), 8u);
}

TEST(HistoryRegister, PushShiftsNewestIntoBitZero)
{
    HistoryRegister h(4);
    h.push(true);
    EXPECT_EQ(h.value(), 0b0001u);
    h.push(false);
    EXPECT_EQ(h.value(), 0b0010u);
    h.push(true);
    EXPECT_EQ(h.value(), 0b0101u);
}

TEST(HistoryRegister, OldOutcomesFallOffTheTop)
{
    HistoryRegister h(2);
    h.push(true);
    h.push(true);
    h.push(false);
    EXPECT_EQ(h.value(), 0b10u);
}

TEST(HistoryRegister, ZeroWidthStaysZero)
{
    HistoryRegister h(0);
    h.push(true);
    h.push(true);
    EXPECT_EQ(h.value(), 0u);
    EXPECT_FALSE(h.allOnes());
}

TEST(HistoryRegister, PushBitsInsertsMultiBitEvents)
{
    HistoryRegister h(8);
    h.pushBits(0b101, 3);
    EXPECT_EQ(h.value(), 0b101u);
    h.pushBits(0b11, 2);
    EXPECT_EQ(h.value(), 0b10111u);
}

TEST(HistoryRegister, PushBitsMasksEventToWidth)
{
    HistoryRegister h(8);
    h.pushBits(0xFFFF, 4); // only low 4 bits of the event survive
    EXPECT_EQ(h.value(), 0xFu);
}

TEST(HistoryRegister, LowExtractsRecentBits)
{
    HistoryRegister h(8);
    for (bool b : {true, false, true, true})
        h.push(b);
    EXPECT_EQ(h.low(2), 0b11u);
    EXPECT_EQ(h.low(4), 0b1011u);
}

TEST(HistoryRegister, AllOnesDetection)
{
    HistoryRegister h(3);
    EXPECT_FALSE(h.allOnes());
    h.push(true);
    h.push(true);
    EXPECT_FALSE(h.allOnes());
    h.push(true);
    EXPECT_TRUE(h.allOnes());
    h.push(false);
    EXPECT_FALSE(h.allOnes());
}

TEST(HistoryRegister, SetMasksToWidth)
{
    HistoryRegister h(4);
    h.set(0xFF);
    EXPECT_EQ(h.value(), 0xFu);
}

TEST(HistoryRegister, SixtyFourBitWidth)
{
    HistoryRegister h(64);
    for (int i = 0; i < 64; ++i)
        h.push(true);
    EXPECT_TRUE(h.allOnes());
    EXPECT_EQ(h.value(), ~std::uint64_t{0});
}

TEST(HistoryRegister, MaxWidthWrapDropsBitSixtyThree)
{
    // At the 64-bit ceiling the shift must wrap cleanly: the oldest bit
    // falls off the top, no sign-extension or overflow artefacts.
    HistoryRegister h(64);
    h.set(~std::uint64_t{0});
    h.push(false);
    EXPECT_EQ(h.value(), ~std::uint64_t{0} << 1);
    EXPECT_FALSE(h.allOnes());
    h.push(true);
    EXPECT_EQ(h.value(), (~std::uint64_t{0} << 2) | 1u);
}

TEST(HistoryRegister, SetAtMaxWidthKeepsAllBits)
{
    HistoryRegister h(64);
    h.set(0xC3FFC3FFC3FFC3FFull);
    EXPECT_EQ(h.value(), 0xC3FFC3FFC3FFC3FFull);
}

TEST(HistoryRegister, InitialValueMaskedToWidth)
{
    HistoryRegister h(4, 0xFFu);
    EXPECT_EQ(h.value(), 0xFu);
    HistoryRegister g(64, ~std::uint64_t{0});
    EXPECT_EQ(g.value(), ~std::uint64_t{0});
}

TEST(HistoryRegister, LowSaturatesAtWidth)
{
    HistoryRegister h(4);
    h.set(0b1010);
    EXPECT_EQ(h.low(0), 0u);
    EXPECT_EQ(h.low(4), 0b1010u);
    // Asking for more bits than retained returns only what exists.
    EXPECT_EQ(h.low(64), 0b1010u);
}

TEST(HistoryRegister, PushBitsFullWidthReplacesContents)
{
    HistoryRegister h(8);
    h.set(0xFF);
    h.pushBits(0xA5, 8);
    EXPECT_EQ(h.value(), 0xA5u);
}

TEST(HistoryRegister, PushBitsZeroWidthEventIsANoOp)
{
    HistoryRegister h(8);
    h.set(0x5A);
    h.pushBits(0xFFFF, 0);
    EXPECT_EQ(h.value(), 0x5Au);
}

TEST(HistoryRegister, PushBitsEventWiderThanRegister)
{
    // A 16-bit event into a 4-bit register keeps only the event's low
    // four bits -- the old contents are shifted out entirely.
    HistoryRegister h(4);
    h.set(0xF);
    h.pushBits(0xABCD, 16);
    EXPECT_EQ(h.value(), 0xDu);
}

TEST(HistoryRegister, PushIntoZeroWidthNeverRetains)
{
    HistoryRegister h(0);
    h.pushBits(0xFFFF, 16);
    EXPECT_EQ(h.value(), 0u);
    EXPECT_EQ(h.low(64), 0u);
}

// --- 0xC3FF prefix (the finite-BHT reset pattern from the paper) ---

TEST(C3ffPrefix, FullSixteenBitsIsThePattern)
{
    EXPECT_EQ(c3ffPrefix(16), 0xC3FFu);
}

TEST(C3ffPrefix, PrefixTakesHighOrderBits)
{
    // 0xC3FF = 1100 0011 1111 1111
    EXPECT_EQ(c3ffPrefix(1), 0b1u);
    EXPECT_EQ(c3ffPrefix(2), 0b11u);
    EXPECT_EQ(c3ffPrefix(3), 0b110u);
    EXPECT_EQ(c3ffPrefix(4), 0xCu);
    EXPECT_EQ(c3ffPrefix(8), 0xC3u);
    EXPECT_EQ(c3ffPrefix(10), 0b1100001111u);
    EXPECT_EQ(c3ffPrefix(12), 0xC3Fu);
}

TEST(C3ffPrefix, ZeroWidthIsZero)
{
    EXPECT_EQ(c3ffPrefix(0), 0u);
}

TEST(C3ffPrefix, WidthsBeyondSixteenRepeatThePattern)
{
    EXPECT_EQ(c3ffPrefix(32), 0xC3FFC3FFull);
    EXPECT_EQ(c3ffPrefix(20), (0xC3FFull << 4) | 0xCu);
    EXPECT_EQ(c3ffPrefix(48), 0xC3FFC3FFC3FFull);
}

TEST(C3ffPrefix, MixtureAvoidsAllOnesAndAllZeros)
{
    // The paper chose 0xC3FF precisely to avoid the all-taken /
    // all-not-taken patterns that loops produce; check every realistic
    // history width keeps the mixture (width >= 3 has both bit values).
    for (unsigned w = 3; w <= 64; ++w) {
        std::uint64_t v = c3ffPrefix(w);
        EXPECT_NE(v, 0u) << "width " << w;
        EXPECT_NE(v, mask(w)) << "width " << w;
    }
}

TEST(C3ffPrefix, FitsWithinWidth)
{
    for (unsigned w = 0; w <= 64; ++w)
        EXPECT_EQ(c3ffPrefix(w) & ~mask(w), 0u) << "width " << w;
}

/**
 * @file
 * Tests for the sweep-optimised trace representation: every precomputed
 * stream must agree with a hand-maintained online reference.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "predictor/bht.hh"
#include "sim/prepared_trace.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace
smallWorkload(std::uint64_t seed = 3, std::uint64_t target = 5'000)
{
    WorkloadParams p;
    p.name = "prepared-unit";
    p.seed = seed;
    p.staticBranches = 80;
    p.functionCount = 8;
    p.targetConditionals = target;
    return generateTrace(p);
}

} // namespace

TEST(PreparedTrace, ExtractsOnlyConditionals)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    EXPECT_EQ(t.size(), raw.conditionalCount());
    EXPECT_EQ(t.name(), raw.name());
}

TEST(PreparedTrace, ColumnsMatchSourceRecords)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::size_t j = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].isConditional())
            continue;
        ASSERT_EQ(t.pc(j), raw[i].pc) << "conditional " << j;
        ASSERT_EQ(t.taken(j), raw[i].taken) << "conditional " << j;
        ++j;
    }
    EXPECT_EQ(j, t.size());
}

TEST(PreparedTrace, GlobalHistoryMatchesOnlineShiftRegister)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::uint64_t ref = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(t.globalHistory(i), ref) << "instance " << i;
        ref = (ref << 1) | (t.taken(i) ? 1 : 0);
    }
}

TEST(PreparedTrace, SelfHistoryMatchesPerBranchRegisters)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::unordered_map<Addr, std::uint64_t> ref;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(t.selfHistory(i), ref[t.pc(i)]) << "instance " << i;
        auto &h = ref[t.pc(i)];
        h = (h << 1) | (t.taken(i) ? 1 : 0);
    }
}

TEST(PreparedTrace, PathStreamMatchesOnlineRegister)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);

    // Online reference: rebuild from the raw conditional stream.
    std::vector<std::uint64_t> ref;
    std::uint64_t reg = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const BranchRecord &rec = raw[i];
        if (!rec.isConditional())
            continue;
        ref.push_back(reg);
        Addr successor = rec.taken ? rec.target : rec.pc + 4;
        reg = (reg << 2) | bits(wordIndex(successor), 2);
    }

    auto stream = t.pathHistoryStream(2);
    ASSERT_EQ(stream.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(stream[i], ref[i]) << "instance " << i;
}

TEST(PreparedTrace, BhtStreamMatchesOnlineBht)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);

    const std::size_t entries = 64;
    const unsigned assoc = 4;
    const unsigned bits_ = 7;
    SetAssocBht ref(entries, assoc, bits_);
    double miss_rate = 0.0;
    auto stream = t.bhtHistoryStream(entries, assoc, bits_, &miss_rate);
    ASSERT_EQ(stream.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(stream[i], ref.visit(t.pc(i)).history)
            << "instance " << i;
        ref.recordOutcome(t.pc(i), t.taken(i));
    }
    EXPECT_DOUBLE_EQ(miss_rate, ref.missRate());
}

TEST(PreparedTrace, BhtStreamsDifferByHistoryWidth)
{
    // The 0xC3FF reset prefix depends on the register width, so streams
    // for different widths are NOT suffixes of one another.
    MemoryTrace raw = smallWorkload(7);
    PreparedTrace t(raw);
    auto narrow = t.bhtHistoryStream(32, 2, 4);
    auto wide = t.bhtHistoryStream(32, 2, 12);
    bool low_bits_differ = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if ((wide[i] & mask(4)) != narrow[i]) {
            low_bits_differ = true;
            break;
        }
    }
    EXPECT_TRUE(low_bits_differ);
}

TEST(PreparedTrace, EmptyTrace)
{
    MemoryTrace raw("empty");
    PreparedTrace t(raw);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.pathHistoryStream(2).empty());
    EXPECT_TRUE(t.bhtHistoryStream(16, 4, 4).empty());
}

/**
 * @file
 * Tests for the sweep-optimised trace representation: every precomputed
 * stream must agree with a hand-maintained online reference.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "predictor/bht.hh"
#include "sim/prepared_trace.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace
smallWorkload(std::uint64_t seed = 3, std::uint64_t target = 5'000)
{
    WorkloadParams p;
    p.name = "prepared-unit";
    p.seed = seed;
    p.staticBranches = 80;
    p.functionCount = 8;
    p.targetConditionals = target;
    return generateTrace(p);
}

} // namespace

TEST(PreparedTrace, ExtractsOnlyConditionals)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    EXPECT_EQ(t.size(), raw.conditionalCount());
    EXPECT_EQ(t.name(), raw.name());
}

TEST(PreparedTrace, ColumnsMatchSourceRecords)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::size_t j = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].isConditional())
            continue;
        ASSERT_EQ(t.pc(j), raw[i].pc) << "conditional " << j;
        ASSERT_EQ(t.taken(j), raw[i].taken) << "conditional " << j;
        ++j;
    }
    EXPECT_EQ(j, t.size());
}

TEST(PreparedTrace, GlobalHistoryMatchesOnlineShiftRegister)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::uint64_t ref = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(t.globalHistory(i), ref) << "instance " << i;
        ref = (ref << 1) | (t.taken(i) ? 1 : 0);
    }
}

TEST(PreparedTrace, SelfHistoryMatchesPerBranchRegisters)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);
    std::unordered_map<Addr, std::uint64_t> ref;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(t.selfHistory(i), ref[t.pc(i)]) << "instance " << i;
        auto &h = ref[t.pc(i)];
        h = (h << 1) | (t.taken(i) ? 1 : 0);
    }
}

TEST(PreparedTrace, PathStreamMatchesOnlineRegister)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);

    // Online reference: rebuild from the raw conditional stream.
    std::vector<std::uint64_t> ref;
    std::uint64_t reg = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const BranchRecord &rec = raw[i];
        if (!rec.isConditional())
            continue;
        ref.push_back(reg);
        Addr successor = rec.taken ? rec.target : rec.pc + 4;
        reg = (reg << 2) | bits(wordIndex(successor), 2);
    }

    auto stream = t.pathHistoryStream(2);
    ASSERT_EQ(stream.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(stream[i], ref[i]) << "instance " << i;
}

TEST(PreparedTrace, BhtStreamMatchesOnlineBht)
{
    MemoryTrace raw = smallWorkload();
    PreparedTrace t(raw);

    const std::size_t entries = 64;
    const unsigned assoc = 4;
    const unsigned bits_ = 7;
    SetAssocBht ref(entries, assoc, bits_);
    double miss_rate = 0.0;
    auto stream = t.bhtHistoryStream(entries, assoc, bits_, &miss_rate);
    ASSERT_EQ(stream.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ(stream[i], ref.visit(t.pc(i)).history)
            << "instance " << i;
        ref.recordOutcome(t.pc(i), t.taken(i));
    }
    EXPECT_DOUBLE_EQ(miss_rate, ref.missRate());
}

TEST(PreparedTrace, BhtStreamsDifferByHistoryWidth)
{
    // The 0xC3FF reset prefix depends on the register width, so streams
    // for different widths are NOT suffixes of one another.
    MemoryTrace raw = smallWorkload(7);
    PreparedTrace t(raw);
    auto narrow = t.bhtHistoryStream(32, 2, 4);
    auto wide = t.bhtHistoryStream(32, 2, 12);
    bool low_bits_differ = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if ((wide[i] & mask(4)) != narrow[i]) {
            low_bits_differ = true;
            break;
        }
    }
    EXPECT_TRUE(low_bits_differ);
}

TEST(PreparedTrace, EmptyTrace)
{
    MemoryTrace raw("empty");
    PreparedTrace t(raw);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.pathHistoryStream(2).empty());
    EXPECT_TRUE(t.bhtHistoryStream(16, 4, 4).empty());
    EXPECT_DOUBLE_EQ(t.bytesPerBranch(), 0.0);
}

TEST(PreparedTrace, TakenWordsPackOutcomesSixtyFourPerWord)
{
    MemoryTrace raw = smallWorkload(11);
    PreparedTrace t(raw);
    ASSERT_EQ(t.takenWordCount(), (t.size() + 63) / 64);
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_EQ((t.takenWord(i >> 6) >> (i & 63)) & 1u,
                  t.taken(i) ? 1u : 0u)
            << "instance " << i;
    }
    // Bits past the last branch stay zero (the fused kernel consumes
    // whole words).
    const std::uint64_t last = t.takenWord(t.takenWordCount() - 1);
    for (std::size_t b = t.size() & 63; b != 0 && b < 64; ++b)
        EXPECT_EQ((last >> b) & 1u, 0u) << "tail bit " << b;
}

TEST(PreparedTrace, BytesPerBranchReflectsPackedColumns)
{
    // pc (8) + word bits (2) + ghist (8) + shist (8) + one outcome
    // BIT + 2 bytes of successor path bits: ~28.13, not the 33 of the
    // old layout with byte-wide outcomes and 8-byte targets.
    MemoryTrace raw = smallWorkload();
    PreparedTrace with_path(raw);
    EXPECT_TRUE(with_path.hasPathColumn());
    EXPECT_GE(with_path.bytesPerBranch(), 28.125);
    EXPECT_LT(with_path.bytesPerBranch(), 28.2);

    // Dropping the path column saves its 2 bytes per branch; the rest
    // of the columns are untouched.
    PreparedTrace without_path(raw, false);
    EXPECT_FALSE(without_path.hasPathColumn());
    EXPECT_GE(without_path.bytesPerBranch(), 26.125);
    EXPECT_LT(without_path.bytesPerBranch(), 26.2);
    EXPECT_EQ(without_path.size(), with_path.size());
    for (std::size_t i = 0; i < without_path.size(); i += 97) {
        ASSERT_EQ(without_path.pc(i), with_path.pc(i));
        ASSERT_EQ(without_path.taken(i), with_path.taken(i));
        ASSERT_EQ(without_path.globalHistory(i),
                  with_path.globalHistory(i));
        ASSERT_EQ(without_path.selfHistory(i),
                  with_path.selfHistory(i));
    }
}

TEST(PreparedTrace, PathStreamSurvivesSuccessorBitNarrowing)
{
    // The path column keeps only the low 16 successor word-index bits;
    // pathHistoryStream asserts bits_per_target <= 16, so the widest
    // legal request must still see every bit it can shift in.
    MemoryTrace raw = smallWorkload(13);
    PreparedTrace t(raw);
    std::vector<std::uint64_t> ref;
    std::uint64_t reg = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const BranchRecord &rec = raw[i];
        if (!rec.isConditional())
            continue;
        ref.push_back(reg);
        Addr successor = rec.taken ? rec.target : rec.pc + 4;
        reg = (reg << 16) | bits(wordIndex(successor), 16);
    }
    auto stream = t.pathHistoryStream(16);
    ASSERT_EQ(stream.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(stream[i], ref[i]) << "instance " << i;
}

/**
 * @file
 * Tests for the misprediction accounting.
 */

#include <gtest/gtest.h>

#include "stats/prediction_stats.hh"

using namespace bpsim;

TEST(PredictionStats, StartsEmpty)
{
    PredictionStats s;
    EXPECT_EQ(s.lookups(), 0u);
    EXPECT_EQ(s.mispredicts(), 0u);
    EXPECT_DOUBLE_EQ(s.mispRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(PredictionStats, CountsCorrectAndIncorrect)
{
    PredictionStats s;
    s.record(0x100, true, true);   // correct
    s.record(0x100, true, false);  // wrong
    s.record(0x104, false, false); // correct
    s.record(0x104, false, true);  // wrong
    EXPECT_EQ(s.lookups(), 4u);
    EXPECT_EQ(s.mispredicts(), 2u);
    EXPECT_DOUBLE_EQ(s.mispRate(), 0.5);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
}

TEST(PredictionStats, SiteTrackingDisabledByDefault)
{
    PredictionStats s;
    s.record(0x100, true, true);
    EXPECT_TRUE(s.sites().empty());
}

TEST(PredictionStats, SiteTrackingBreaksDownPerBranch)
{
    PredictionStats s(/*track_sites=*/true);
    s.record(0x100, true, true);
    s.record(0x100, false, true);
    s.record(0x200, true, false);
    ASSERT_EQ(s.sites().size(), 2u);

    const auto &a = s.sites().at(0x100);
    EXPECT_EQ(a.executed, 2u);
    EXPECT_EQ(a.taken, 1u);
    EXPECT_EQ(a.mispredicted, 1u);
    EXPECT_DOUBLE_EQ(a.takenRate(), 0.5);
    EXPECT_DOUBLE_EQ(a.mispRate(), 0.5);

    const auto &b = s.sites().at(0x200);
    EXPECT_EQ(b.executed, 1u);
    EXPECT_EQ(b.taken, 1u);
    EXPECT_EQ(b.mispredicted, 1u);
}

TEST(PredictionStats, ResetClearsEverything)
{
    PredictionStats s(true);
    s.record(0x100, true, false);
    s.reset();
    EXPECT_EQ(s.lookups(), 0u);
    EXPECT_EQ(s.mispredicts(), 0u);
    EXPECT_TRUE(s.sites().empty());
}

TEST(PredictionStats, MergeAggregatesTotalsAndSites)
{
    PredictionStats a(true), b(true);
    a.record(0x100, true, true);
    a.record(0x100, true, false);
    b.record(0x100, false, false);
    b.record(0x200, true, true);

    a.merge(b);
    EXPECT_EQ(a.lookups(), 4u);
    EXPECT_EQ(a.mispredicts(), 1u);
    ASSERT_EQ(a.sites().size(), 2u);
    EXPECT_EQ(a.sites().at(0x100).executed, 3u);
    EXPECT_EQ(a.sites().at(0x100).taken, 2u);
    EXPECT_EQ(a.sites().at(0x200).executed, 1u);
}

TEST(BranchSiteStats, RatesOfEmptySiteAreZero)
{
    BranchSiteStats s;
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.mispRate(), 0.0);
}

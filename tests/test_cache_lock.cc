/**
 * @file
 * Cross-process hardening of the result cache: the flock writer lock,
 * tmp-file + atomic-rename publication, the size-budget LRU, and the
 * "last writer wins" regression -- a failed or concurrent store must
 * never clobber, truncate or tear an entry another process published.
 *
 * The racing tests fork real child processes (threads share the
 * in-process mutex, which would mask lock bugs); each child opens its
 * own ResultCache over the shared directory, exactly like concurrent
 * sweep_server daemons pointed at one cache.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/result_cache.hh"
#include "common/byte_io.hh"
#include "common/file_lock.hh"

using namespace bpsim;

namespace {

std::string
freshDir(const char *leaf)
{
    std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

CacheKey
makeKey(unsigned i)
{
    CacheKey key;
    key.trace = TraceHash{0x1234, 0x5678 + i};
    key.scheme = "gshare";
    key.configKey = "min_bits=4 max_bits=" + std::to_string(4 + i);
    key.engineVersion = 1;
    return key;
}

/** A payload whose values encode @p tag so readers can tell entries
 *  (and writer generations) apart bit-exactly. */
CachedSweep
makePayload(unsigned tag, std::size_t points = 8)
{
    CachedSweep payload;
    payload.misprediction = Surface("misprediction");
    payload.aliasing = Surface("aliasing");
    payload.harmless = Surface("harmless");
    for (std::size_t p = 0; p < points && p <= 8; ++p) {
        const unsigned row = static_cast<unsigned>(p);
        const unsigned col = 8 - row;
        const double value = tag + p / 1000.0;
        payload.misprediction.add(8, row, col, value);
        payload.aliasing.add(8, row, col, value / 2);
        payload.harmless.add(8, row, col, value / 4);
    }
    payload.bhtMissRate = tag * 0.001;
    return payload;
}

bool
payloadTag(const CachedSweep &payload, unsigned *tag)
{
    if (payload.misprediction.tiers().empty() ||
        payload.misprediction.tiers()[0].points.empty())
        return false;
    const double head =
        payload.misprediction.tiers()[0].points[0].value;
    *tag = static_cast<unsigned>(head);
    return true;
}

/** Every .bpc file under @p dir parses completely (no torn writes,
 *  no leftover junk).  @return the number of entries. */
std::size_t
expectAllEntriesParse(const std::string &dir)
{
    std::size_t entries = 0;
    for (const auto &file :
         std::filesystem::directory_iterator(dir)) {
        const std::string path = file.path().string();
        if (path.size() < 4 ||
            path.compare(path.size() - 4, 4, ".bpc") != 0) {
            // The only allowed non-entry file is the lock file;
            // .tmp debris would mean a failed writer leaked.
            EXPECT_NE(path.find(".bpsim.cache.lock"),
                      std::string::npos)
                << "unexpected file in cache dir: " << path;
            continue;
        }
        auto stream = StdioFileStream::openRead(path);
        EXPECT_TRUE(stream.ok()) << path;
        if (!stream.ok())
            continue;
        Result<BpcImage> image = readBpc(*stream.value());
        EXPECT_TRUE(image.ok())
            << path << ": "
            << (image.ok() ? "" : image.error().message());
        ++entries;
    }
    return entries;
}

TEST(CacheLock, RacingWritersAcrossProcessesLoseNoEntries)
{
    const std::string dir = freshDir("cache_lock_race");
    constexpr unsigned kWriters = 4;
    constexpr unsigned kKeysPerWriter = 6;

    std::vector<pid_t> children;
    for (unsigned w = 0; w < kWriters; ++w) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: its own cache object over the shared dir, its
            // own slice of the key space, interleaved with everyone.
            ResultCache cache(dir);
            bool all_ok = true;
            for (unsigned i = 0; i < kKeysPerWriter; ++i) {
                const unsigned id = w * kKeysPerWriter + i;
                all_ok = all_ok &&
                         cache.store(makeKey(id), makePayload(id))
                             .ok();
            }
            _exit(all_ok ? 0 : 1);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int wstatus = 0;
        ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
        ASSERT_TRUE(WIFEXITED(wstatus));
        EXPECT_EQ(WEXITSTATUS(wstatus), 0);
    }

    // No torn files, and every single entry every writer stored is
    // present and readable with its exact payload.
    EXPECT_EQ(expectAllEntriesParse(dir), kWriters * kKeysPerWriter);
    ResultCache reader(dir);
    for (unsigned id = 0; id < kWriters * kKeysPerWriter; ++id) {
        std::optional<CachedSweep> hit = reader.lookup(makeKey(id));
        ASSERT_TRUE(hit.has_value()) << "lost entry " << id;
        unsigned tag = 0;
        ASSERT_TRUE(payloadTag(*hit, &tag));
        EXPECT_EQ(tag, id);
        const CachedSweep expect = makePayload(id);
        EXPECT_EQ(std::memcmp(&hit->bhtMissRate,
                              &expect.bhtMissRate, sizeof(double)),
                  0);
    }
}

TEST(CacheLock, SameKeyWritersNeverTearTheEntry)
{
    const std::string dir = freshDir("cache_lock_samekey");
    constexpr unsigned kWriters = 4;
    constexpr unsigned kStoresPerWriter = 8;
    const CacheKey key = makeKey(0);

    std::vector<pid_t> children;
    for (unsigned w = 0; w < kWriters; ++w) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ResultCache cache(dir);
            bool all_ok = true;
            for (unsigned i = 0; i < kStoresPerWriter; ++i)
                all_ok =
                    all_ok &&
                    cache.store(key, makePayload(100 + w)).ok();
            _exit(all_ok ? 0 : 1);
        }
        children.push_back(pid);
    }

    // A polling reader races the writers the whole time: every
    // lookup must be a miss or one writer's COMPLETE payload --
    // never a blend, never a checksum failure served as data.
    unsigned observed = 0;
    {
        for (unsigned spin = 0; spin < 2000; ++spin) {
            ResultCache fresh(dir); // no in-memory echo of old reads
            std::optional<CachedSweep> hit = fresh.lookup(key);
            if (!hit)
                continue;
            ++observed;
            unsigned tag = 0;
            ASSERT_TRUE(payloadTag(*hit, &tag));
            ASSERT_GE(tag, 100u);
            ASSERT_LT(tag, 100u + kWriters);
            // The whole payload belongs to that one writer.
            const CachedSweep expect = makePayload(tag);
            ASSERT_EQ(std::memcmp(&hit->bhtMissRate,
                                  &expect.bhtMissRate,
                                  sizeof(double)),
                      0);
            ASSERT_EQ(hit->misprediction.tiers()[0].points.size(),
                      expect.misprediction.tiers()[0].points.size());
        }
    }
    for (const pid_t pid : children) {
        int wstatus = 0;
        ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
        EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
    }
    EXPECT_GT(observed, 0u);
    EXPECT_EQ(expectAllEntriesParse(dir), 1u);
    // The cache's own corruption counter never fired in this process.
    ResultCache final_reader(dir);
    ASSERT_TRUE(final_reader.lookup(key).has_value());
    EXPECT_EQ(final_reader.stats().corrupt, 0u);
}

TEST(CacheLock, FailedStoreNeverClobbersAPublishedEntry)
{
    // The PR6 "last writer wins" regression: the pre-locking code
    // wrote the final path in place, so a failed writer truncated a
    // good entry.  Now a failed store may only remove its own .tmp.
    const std::string dir = freshDir("cache_lock_failed_store");
    const CacheKey key = makeKey(7);

    ResultCache writer(dir);
    ASSERT_TRUE(writer.store(key, makePayload(7)).ok());

    ResultCache saboteur(dir);
    saboteur.failNextDiskStoreForTesting();
    EXPECT_FALSE(saboteur.store(key, makePayload(999)).ok());
    EXPECT_EQ(saboteur.stats().storeFailures, 1u);

    // The published entry is intact (a fresh cache proves it comes
    // from disk), and no .tmp debris was left behind.
    ResultCache reader(dir);
    bool from_disk = false;
    std::optional<CachedSweep> hit = reader.lookup(key, &from_disk);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(from_disk);
    unsigned tag = 0;
    ASSERT_TRUE(payloadTag(*hit, &tag));
    EXPECT_EQ(tag, 7u);
    EXPECT_EQ(expectAllEntriesParse(dir), 1u);

    // The saboteur still serves the value from memory (store() always
    // lands in memory even when the mirror write fails).
    EXPECT_TRUE(saboteur.lookup(key).has_value());
}

TEST(CacheLock, BudgetEvictionKeepsTheNewestAndTheJustStored)
{
    const std::string dir = freshDir("cache_lock_budget");

    // Learn one entry's size, then budget for about three of them.
    std::uint64_t entry_bytes = 0;
    {
        ResultCache probe(dir);
        ASSERT_TRUE(probe.store(makeKey(0), makePayload(0)).ok());
        entry_bytes = probe.diskUsageBytes();
        ASSERT_GT(entry_bytes, 0u);
    }
    std::filesystem::remove_all(dir);

    const std::uint64_t budget = 3 * entry_bytes + entry_bytes / 2;
    ResultCache cache(dir, budget);
    constexpr unsigned kStores = 8;
    for (unsigned i = 0; i < kStores; ++i) {
        ASSERT_TRUE(cache.store(makeKey(i), makePayload(i)).ok());
        EXPECT_LE(cache.diskUsageBytes(), budget) << "store " << i;
        // The entry just stored always survives its own eviction
        // pass, even while older ones are being dropped.
        EXPECT_TRUE(
            std::filesystem::exists(cache.filePath(makeKey(i))));
    }
    EXPECT_GE(cache.stats().diskEvictions, kStores - 4);

    // Survivors are the newest stores; evicted keys miss on disk but
    // can still be answered from this cache's memory tier.
    ResultCache fresh(dir, budget);
    EXPECT_TRUE(fresh.lookup(makeKey(kStores - 1)).has_value());
    EXPECT_FALSE(fresh.lookup(makeKey(0)).has_value());
    EXPECT_TRUE(cache.lookup(makeKey(0)).has_value());
    expectAllEntriesParse(dir);
}

TEST(CacheLock, BudgetSmallerThanOneEntryStillStores)
{
    const std::string dir = freshDir("cache_lock_tiny_budget");
    ResultCache cache(dir, 1); // absurd: one byte
    ASSERT_TRUE(cache.store(makeKey(1), makePayload(1)).ok());
    // The just-stored entry is protected, so it lands and stays.
    EXPECT_TRUE(
        std::filesystem::exists(cache.filePath(makeKey(1))));
    ResultCache reader(dir);
    EXPECT_TRUE(reader.lookup(makeKey(1)).has_value());
    // The next store evicts it (it is now the oldest unprotected).
    ASSERT_TRUE(cache.store(makeKey(2), makePayload(2)).ok());
    EXPECT_FALSE(
        std::filesystem::exists(cache.filePath(makeKey(1))));
    EXPECT_TRUE(
        std::filesystem::exists(cache.filePath(makeKey(2))));
}

TEST(CacheLock, WriterLockIsExclusiveAcrossProcesses)
{
    const std::string dir = freshDir("cache_lock_flock");
    ResultCache cache(dir);
    ASSERT_TRUE(cache.store(makeKey(0), makePayload(0)).ok());
    const std::string lock_path = cache.lockFilePath();
    ASSERT_FALSE(lock_path.empty());
    ASSERT_TRUE(std::filesystem::exists(lock_path));

    // Fork FIRST, take the lock after: a flock travels with its
    // open file description across fork, so a lock acquired before
    // forking would be co-owned by the child and never release.
    int go[2], done[2];
    ASSERT_EQ(pipe(go), 0);
    ASSERT_EQ(pipe(done), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        close(go[1]);
        close(done[0]);
        char gate = 0;
        if (read(go[0], &gate, 1) != 1)
            _exit(2);
        // The store must wait for the parent's lock; when it
        // completes, the lock was necessarily released first.
        ResultCache child(dir);
        const bool ok = child.store(makeKey(1), makePayload(1)).ok();
        const char byte = ok ? '1' : '0';
        static_cast<void>(write(done[1], &byte, 1));
        _exit(ok ? 0 : 1);
    }
    close(go[0]);
    close(done[1]);

    {
        Result<FileLock> held = FileLock::acquire(lock_path);
        ASSERT_TRUE(held.ok());
        ASSERT_EQ(write(go[1], "g", 1), 1);
        // Give the child a moment to reach the lock, then release.
        usleep(100 * 1000);
        EXPECT_FALSE(
            std::filesystem::exists(cache.filePath(makeKey(1))))
            << "child wrote while the writer lock was held";
        held.value().release();
    }

    char byte = 0;
    ASSERT_EQ(read(done[0], &byte, 1), 1);
    EXPECT_EQ(byte, '1');
    close(go[1]);
    close(done[0]);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
    EXPECT_TRUE(std::filesystem::exists(cache.filePath(makeKey(1))));
}

} // namespace

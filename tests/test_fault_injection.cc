/**
 * @file
 * Fault-injection campaigns over the .bpt writer and reader (ctest
 * label "robust"): every I/O operation in a write or read sequence is
 * made to fail -- outright or as a short transfer -- and every single
 * failure point must surface as a structured Error, with disk-full at
 * close() reported rather than swallowed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/byte_io.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_io.hh"
#include "verify/fault_injection.hh"

using namespace bpsim;
using verify::FaultInjectingStream;
using verify::FaultPlan;

namespace {

MemoryTrace
makeTrace(std::size_t n)
{
    MemoryTrace trace("fault-campaign");
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = 0x1000 + 4 * i;
        rec.target = 0x2000;
        rec.type = BranchType::Conditional;
        rec.taken = i % 3 != 0;
        trace.append(rec);
    }
    return trace;
}

/**
 * Run the full write sequence against a fault stream; @return the
 * first error (or success) and, via @p ops_out, the operation count.
 */
Status
writeUnderFaults(MemoryTrace &trace, FaultPlan plan,
                 std::uint64_t *ops_out = nullptr,
                 std::string *image_out = nullptr)
{
    trace.reset();
    auto inner = std::make_unique<MemoryByteStream>();
    auto *inner_raw = inner.get();
    auto fault =
        std::make_unique<FaultInjectingStream>(std::move(inner), plan);
    auto *fault_raw = fault.get();

    auto writer = TraceWriter::open(std::move(fault), "fault-campaign");
    Status result;
    if (!writer.ok()) {
        result = writer.error();
    } else {
        auto written = writer.value().writeAll(trace);
        result =
            written.ok() ? writer.value().close() : written.status();
        if (ops_out)
            *ops_out = fault_raw->opsIssued();
        if (image_out)
            *image_out = inner_raw->bytes();
    }
    // A failed open destroys the stream with the writer result; only
    // harvest counters from surviving writers above.
    return result;
}

/** Same for the read side: open and drain a .bpt image. */
Status
readUnderFaults(const std::string &image, FaultPlan plan,
                std::uint64_t *ops_out = nullptr)
{
    auto fault = std::make_unique<FaultInjectingStream>(
        std::make_unique<MemoryByteStream>(image), plan);
    auto *fault_raw = fault.get();
    auto reader = TraceReader::open(std::move(fault));
    if (!reader.ok())
        return reader.error();
    BranchRecord rec;
    while (reader.value().next(rec)) {
    }
    if (ops_out)
        *ops_out = fault_raw->opsIssued();
    return reader.value().status();
}

std::string
buildImage(std::size_t n)
{
    MemoryTrace trace = makeTrace(n);
    std::string image;
    Status st = writeUnderFaults(trace, FaultPlan{}, nullptr, &image);
    EXPECT_TRUE(st.ok());
    return image;
}

} // namespace

TEST(FaultInjection, CleanPlanPassesThrough)
{
    MemoryTrace trace = makeTrace(8);
    std::uint64_t ops = 0;
    std::string image;
    ASSERT_TRUE(writeUnderFaults(trace, FaultPlan{}, &ops, &image).ok());
    // header write + 8 record writes + close (seek, patch, flush,
    // close) -- the campaign below sweeps every one of these.
    EXPECT_EQ(ops, 13u);
    EXPECT_TRUE(verify::tryLoadImage(image).ok());
}

TEST(FaultInjection, EveryWriteOpFailurePointIsReported)
{
    MemoryTrace trace = makeTrace(8);
    std::uint64_t total = 0;
    ASSERT_TRUE(writeUnderFaults(trace, FaultPlan{}, &total).ok());
    ASSERT_GT(total, 0u);

    for (std::uint64_t fail = 0; fail < total; ++fail) {
        for (bool short_transfer : {false, true}) {
            FaultPlan plan;
            plan.failFrom = fail;
            plan.shortTransfer = short_transfer;
            Status st = writeUnderFaults(trace, plan);
            EXPECT_FALSE(st.ok())
                << "write op " << fail << " (short="
                << short_transfer
                << ") failed silently: no error surfaced";
        }
    }
}

TEST(FaultInjection, EveryReadOpFailurePointIsReported)
{
    std::string image = buildImage(8);
    std::uint64_t total = 0;
    ASSERT_TRUE(readUnderFaults(image, FaultPlan{}, &total).ok());
    ASSERT_GT(total, 0u);

    for (std::uint64_t fail = 0; fail < total; ++fail) {
        for (bool short_transfer : {false, true}) {
            FaultPlan plan;
            plan.failFrom = fail;
            plan.shortTransfer = short_transfer;
            Status st = readUnderFaults(image, plan);
            EXPECT_FALSE(st.ok())
                << "read op " << fail << " (short=" << short_transfer
                << ") failed silently: no error surfaced";
        }
    }
}

TEST(FaultInjection, DiskFullAtCloseIsAnErrorNotATruncatedTrace)
{
    // The last four ops of a write sequence are close()'s
    // seek/patch/flush/close; failing each must produce an error --
    // before the fix, a full disk at fclose() yielded a "successful"
    // truncated trace.
    MemoryTrace trace = makeTrace(8);
    std::uint64_t total = 0;
    ASSERT_TRUE(writeUnderFaults(trace, FaultPlan{}, &total).ok());
    ASSERT_GE(total, 4u);
    for (std::uint64_t back = 1; back <= 4; ++back) {
        FaultPlan plan;
        plan.failFrom = total - back;
        Status st = writeUnderFaults(trace, plan);
        ASSERT_FALSE(st.ok());
        EXPECT_NE(st.error().message().find("trace file"),
                  std::string::npos);
    }
}

TEST(FaultInjection, AbandonedPartialImageDoesNotLoad)
{
    // A write that died mid-stream leaves a header whose record count
    // was never patched; the reader's size reconciliation must reject
    // the partial image.
    MemoryTrace trace = makeTrace(8);
    FaultPlan plan;
    plan.failFrom = 5; // die after the header and a few records
    std::string partial;
    ASSERT_FALSE(writeUnderFaults(trace, plan, nullptr, &partial).ok());
    ASSERT_FALSE(partial.empty());
    EXPECT_FALSE(verify::tryLoadImage(partial).ok());
}

TEST(FaultInjection, StickyWriterErrorReportedOnLaterWrites)
{
    MemoryTrace trace = makeTrace(4);
    trace.reset();
    FaultPlan plan;
    plan.failFrom = 2; // header ok, first record ok, second fails
    auto writer = TraceWriter::open(
        std::make_unique<FaultInjectingStream>(
            std::make_unique<MemoryByteStream>(), plan),
        "sticky");
    ASSERT_TRUE(writer.ok());
    BranchRecord rec;
    ASSERT_TRUE(trace.next(rec));
    EXPECT_TRUE(writer.value().write(rec).ok());
    ASSERT_TRUE(trace.next(rec));
    EXPECT_FALSE(writer.value().write(rec).ok());
    // The error is sticky: later writes and close keep reporting it.
    ASSERT_TRUE(trace.next(rec));
    EXPECT_FALSE(writer.value().write(rec).ok());
    EXPECT_FALSE(writer.value().close().ok());
    EXPECT_EQ(writer.value().recordsWritten(), 1u);
}

TEST(FaultInjection, FailedRewindSurfacesAndRecovers)
{
    std::string image = buildImage(4);
    // Ops for a full read: magic, header, size, name, 4 records = 8;
    // make the NEXT op (the rewind seek) fail, non-sticky.
    FaultPlan plan;
    plan.failFrom = 8;
    plan.sticky = false;
    auto reader = TraceReader::open(
        std::make_unique<FaultInjectingStream>(
            std::make_unique<MemoryByteStream>(image), plan));
    ASSERT_TRUE(reader.ok());
    BranchRecord rec;
    int n = 0;
    while (reader.value().next(rec))
        ++n;
    EXPECT_EQ(n, 4);
    ASSERT_TRUE(reader.value().status().ok());

    reader.value().reset();
    EXPECT_FALSE(reader.value().status().ok());
    EXPECT_FALSE(reader.value().next(rec));

    // A later successful rewind clears the sticky error.
    reader.value().reset();
    EXPECT_TRUE(reader.value().status().ok());
    n = 0;
    while (reader.value().next(rec))
        ++n;
    EXPECT_EQ(n, 4);
}

/**
 * @file
 * Tests for the dealiased predictors (agree, bi-mode) and the untagged
 * SAs first level -- the design family the paper's aliasing analysis
 * motivated.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/dealiased.hh"
#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

BranchRecord
cond(Addr pc, bool taken)
{
    BranchRecord r;
    r.pc = pc;
    r.target = pc + 64;
    r.type = BranchType::Conditional;
    r.taken = taken;
    return r;
}

MemoryTrace &
workload()
{
    static MemoryTrace trace = [] {
        WorkloadParams p;
        p.name = "dealias-unit";
        p.seed = 404;
        p.staticBranches = 3000;
        p.functionCount = 250;
        p.targetConditionals = 150'000;
        return generateTrace(p);
    }();
    return trace;
}

double
mispOn(BranchPredictor &p)
{
    workload().reset();
    return runPredictor(workload(), p).mispRate();
}

} // namespace

TEST(Agree, NameAndGeometry)
{
    AgreePredictor p(10, 8);
    EXPECT_EQ(p.name(), "agree 2^10 (h8)");
    EXPECT_EQ(p.counterCount(), 1024u);
}

TEST(Agree, LearnsABiasedBranchInstantly)
{
    AgreePredictor p(6, 6);
    // First encounter captures the bias; afterwards "agree" (the
    // initialised state) predicts correctly with no training at all.
    p.onBranch(cond(0x400100, false));
    std::uint64_t wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += p.onBranch(cond(0x400100, false)) != false;
    EXPECT_EQ(wrong, 0u);
}

TEST(Agree, BiasBitsCapturedPerBranch)
{
    AgreePredictor p(8, 8);
    p.onBranch(cond(0x400100, true));
    p.onBranch(cond(0x400200, false));
    EXPECT_EQ(p.biasedBranches(), 2u);
}

TEST(Agree, OppositeBiasAliasesAreNeutralised)
{
    // Two branches forced onto the SAME agree counter (index bits 0 ->
    // single counter) with opposite fixed directions: a plain shared
    // two-bit counter would thrash; the agree counter sees "agrees"
    // from both and stays correct.
    AgreePredictor agree(0, 0);
    auto shared = makeAddressIndexed(0); // one shared direction counter

    std::uint64_t agree_wrong = 0, shared_wrong = 0;
    for (int i = 0; i < 400; ++i) {
        BranchRecord a = cond(0x400100, true);
        BranchRecord b = cond(0x400200, false);
        agree_wrong += agree.onBranch(a) != a.taken;
        agree_wrong += agree.onBranch(b) != b.taken;
        shared_wrong += shared->onBranch(a) != a.taken;
        shared_wrong += shared->onBranch(b) != b.taken;
    }
    EXPECT_LE(agree_wrong, 4u);
    EXPECT_GE(shared_wrong, 350u); // destructive thrash
}

TEST(Agree, ResetForgetsBiasesAndCounters)
{
    AgreePredictor p(6, 6);
    p.onBranch(cond(0x400100, false));
    p.reset();
    EXPECT_EQ(p.biasedBranches(), 0u);
}

TEST(BiMode, NameAndGeometry)
{
    BiModePredictor p(10, 9, 10);
    EXPECT_EQ(p.name(), "bimode 2x2^10 + 2^9 choice (h10)");
    EXPECT_EQ(p.counterCount(), 1024u + 1024u + 512u);
}

TEST(BiMode, LearnsBiasedBranches)
{
    BiModePredictor p(8, 8, 8);
    std::uint64_t wrong = 0;
    for (int i = 0; i < 200; ++i) {
        wrong += p.onBranch(cond(0x400100, true)) != true;
        wrong += p.onBranch(cond(0x400200, false)) != false;
    }
    EXPECT_LT(wrong, 10u);
}

TEST(BiMode, ResetRestoresBehaviour)
{
    BiModePredictor p(8, 8, 8);
    Pcg32 rng(5);
    std::vector<BranchRecord> stream;
    for (int i = 0; i < 2000; ++i)
        stream.push_back(cond(0x400000 + 4 * rng.nextBounded(32),
                              rng.bernoulli(0.7)));
    std::uint64_t first = 0, second = 0;
    for (const auto &r : stream)
        first += p.onBranch(r) != r.taken;
    p.reset();
    for (const auto &r : stream)
        second += p.onBranch(r) != r.taken;
    EXPECT_EQ(first, second);
}

TEST(Dealiased, ReduceAliasingDamageOnLargeWorkload)
{
    // The motivating claim: at a small table size where gshare is
    // aliasing-bound, agree and bi-mode recover part of the loss at
    // (approximately) equal hardware.
    auto gshare = makeGshare(10, 0);        // 1024 counters
    AgreePredictor agree(10, 10);           // 1024 counters + bias bits
    BiModePredictor bimode(9, 9, 9);        // 2x512 + 512 counters

    double g = mispOn(*gshare);
    double a = mispOn(agree);
    double b = mispOn(bimode);
    EXPECT_LT(a, g);
    EXPECT_LT(b, g);
}

TEST(SAsSelector, BehavesLikePAsWhenRegistersAreAmple)
{
    // With far more registers than branches and no tag aliasing in the
    // address range used, SAs equals PAs(inf) exactly.
    auto sas = makeSAs(4, 2, 16); // 64K registers
    auto pas = makePAsPerfect(4, 2);
    Pcg32 rng(9);
    std::uint64_t diff = 0;
    for (int i = 0; i < 5000; ++i) {
        BranchRecord r = cond(0x400000 + 4 * rng.nextBounded(64),
                              rng.bernoulli(0.6));
        diff += sas->onBranch(r) != pas->onBranch(r);
    }
    EXPECT_EQ(diff, 0u);
}

TEST(SAsSelector, UntaggedSharingPollutesHistories)
{
    // Two branches whose word indices collide in a 1-register SAs first
    // level share one history; PAs keeps them apart.  An alternating
    // branch is self-predictable under PAs but its shared SAs register
    // is scrambled by the interleaved second branch.
    auto sas = makeSAs(6, 0, 0); // single shared register
    auto pas = makePAsPerfect(6, 0);

    Pcg32 rng(11);
    std::uint64_t sas_wrong = 0, pas_wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        BranchRecord a = cond(0x400100, i % 2 == 0);
        BranchRecord b = cond(0x400200, rng.bernoulli(0.5));
        sas_wrong += sas->onBranch(a) != a.taken;
        pas_wrong += pas->onBranch(a) != a.taken;
        sas->onBranch(b);
        pas->onBranch(b);
    }
    EXPECT_LT(pas_wrong, 100u);
    EXPECT_GT(sas_wrong, pas_wrong * 2);
}

TEST(SAsSelector, SchemeNameAndRegisterCount)
{
    SetPerAddressSelector s(5, 8);
    EXPECT_EQ(s.registerCount(), 32u);
    EXPECT_EQ(s.schemeName(), "SAs(32r)");
}

TEST(SAsSelector, AllOnesDetection)
{
    SetPerAddressSelector s(2, 4);
    BranchRecord r = cond(0x400100, true);
    s.recordOutcome(r);
    s.recordOutcome(r);
    EXPECT_TRUE(s.patternAllOnes(r, 2));
    EXPECT_FALSE(s.patternAllOnes(r, 3));
}

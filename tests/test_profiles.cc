/**
 * @file
 * Tests for the fourteen benchmark profiles, including loose calibration
 * checks against the paper's Table 1 characteristics (tight bounds
 * belong to EXPERIMENTS.md, not unit tests).
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

TEST(Profiles, FourteenProfilesInPaperOrder)
{
    const auto &names = profileNames();
    ASSERT_EQ(names.size(), 14u);
    EXPECT_EQ(names.front(), "compress");
    EXPECT_EQ(names[3], "gcc");
    EXPECT_EQ(names.back(), "video_play");
}

TEST(Profiles, FocusProfilesAreThePapersThree)
{
    const auto &focus = focusProfileNames();
    ASSERT_EQ(focus.size(), 3u);
    EXPECT_EQ(focus[0], "espresso");
    EXPECT_EQ(focus[1], "mpeg_play");
    EXPECT_EQ(focus[2], "real_gcc");
}

TEST(Profiles, NameLookup)
{
    EXPECT_TRUE(isProfileName("espresso"));
    EXPECT_TRUE(isProfileName("sdet"));
    EXPECT_FALSE(isProfileName("quake"));
    EXPECT_FALSE(isProfileName(""));
}

TEST(Profiles, AllParamsValidate)
{
    for (const auto &name : profileNames()) {
        WorkloadParams p = profileParams(name);
        p.validate(); // fatal()s on inconsistency
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.targetConditionals, 0u);
    }
}

TEST(Profiles, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &name : profileNames())
        seeds.insert(profileParams(name).seed);
    EXPECT_EQ(seeds.size(), profileNames().size());
}

TEST(Profiles, LengthOverrideHonoured)
{
    WorkloadParams p = profileParams("espresso", 12'345);
    EXPECT_EQ(p.targetConditionals, 12'345u);
}

TEST(Profiles, PaperDataMatchesTable1)
{
    const auto &esp = paperData("espresso");
    EXPECT_EQ(esp.staticConditionals, 1764u);
    EXPECT_EQ(esp.staticCovering90, 110u);
    EXPECT_EQ(esp.dynamicConditionals, 76'466'469u);
    EXPECT_EQ(esp.suite, Suite::SpecInt92);

    const auto &gcc = paperData("real_gcc");
    EXPECT_EQ(gcc.staticConditionals, 17361u);
    EXPECT_EQ(gcc.staticCovering90, 3214u);
    EXPECT_EQ(gcc.suite, Suite::IbsUltrix);
}

TEST(Profiles, PaperFrequencyRowsMatchTable2)
{
    const auto &rows = paperFrequencyRows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "espresso");
    EXPECT_EQ(rows[0].quartiles[0], 12u);
    EXPECT_EQ(rows[2].name, "real_gcc");
    EXPECT_EQ(rows[2].quartiles[3], 5749u);
}

TEST(ProfilesDeathTest, UnknownProfileIsFatal)
{
    EXPECT_EXIT(profileParams("doom"), ::testing::ExitedWithCode(1),
                "unknown workload profile");
    EXPECT_EXIT(paperData("doom"), ::testing::ExitedWithCode(1),
                "unknown workload profile");
}

TEST(Profiles, IbsProfilesContainKernelCode)
{
    WorkloadParams p = profileParams("mpeg_play");
    EXPECT_GT(p.kernelFraction, 0.0);
    WorkloadParams spec = profileParams("espresso");
    EXPECT_DOUBLE_EQ(spec.kernelFraction, 0.0);
}

// --- Loose calibration checks (scaled traces vs paper shape) ---

namespace {

TraceCharacterization
characterize(const std::string &profile, std::uint64_t n)
{
    MemoryTrace trace = generateProfileTrace(profile, n);
    return TraceCharacterization::measure(trace);
}

} // namespace

TEST(ProfileCalibration, EspressoStaticCountsNearTable1)
{
    auto ch = characterize("espresso", 400'000);
    double paper = 1764;
    EXPECT_GT(ch.staticConditionals(), paper * 0.6);
    EXPECT_LT(ch.staticConditionals(), paper * 1.4);
}

TEST(ProfileCalibration, EspressoIsHighlyConcentrated)
{
    // Paper Table 2: 12 branches carry the first 50% of instances.
    auto ch = characterize("espresso", 400'000);
    EXPECT_LE(ch.staticCovering(0.50), 40u);
}

TEST(ProfileCalibration, RealGccExercisesManyBranches)
{
    auto ch = characterize("real_gcc", 600'000);
    EXPECT_GT(ch.staticConditionals(), 8'000u);
    // Its 90% band needs hundreds of branches (paper: 3214).
    EXPECT_GT(ch.staticCovering(0.90), 400u);
}

TEST(ProfileCalibration, SizeOrderingMatchesPaper)
{
    // compress is tiny, real_gcc is the largest: preserved by the
    // profiles.
    auto small = characterize("compress", 300'000);
    auto large = characterize("real_gcc", 300'000);
    EXPECT_LT(small.staticConditionals(),
              large.staticConditionals() / 10);
}

TEST(ProfileCalibration, ConditionalDensityInTable1Range)
{
    // Table 1 densities run about 10-25% of dynamic instructions.
    for (const std::string name : {"espresso", "mpeg_play"}) {
        auto ch = characterize(name, 200'000);
        EXPECT_GT(ch.conditionalDensity(), 0.05) << name;
        EXPECT_LT(ch.conditionalDensity(), 0.40) << name;
    }
}

TEST(ProfileCalibration, IbsTracesIncludeKernelInstances)
{
    auto ch = characterize("mpeg_play", 300'000);
    EXPECT_GT(ch.kernelConditionals(), 0u);
    auto spec = characterize("espresso", 300'000);
    EXPECT_EQ(spec.kernelConditionals(), 0u);
}

TEST(ProfileCalibration, HighlyBiasedPopulationIsSubstantial)
{
    // Section 2: "A large proportion of the branches ... are very
    // highly biased".  Loose floor: at least a third of dynamic
    // instances from branches with >= 0.9 bias.
    auto ch = characterize("real_gcc", 500'000);
    EXPECT_GT(ch.dynamicFractionBiasedAbove(0.9), 0.33);
}

/**
 * @file
 * Tests for the Chang-et-al branch classification.
 */

#include <gtest/gtest.h>

#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "stats/branch_classes.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

TEST(BranchClasses, BandEdges)
{
    EXPECT_EQ(classifyTakenRate(0.0), BranchClass::AlwaysNotTaken);
    EXPECT_EQ(classifyTakenRate(0.049), BranchClass::AlwaysNotTaken);
    EXPECT_EQ(classifyTakenRate(0.05), BranchClass::MostlyNotTaken);
    EXPECT_EQ(classifyTakenRate(0.299), BranchClass::MostlyNotTaken);
    EXPECT_EQ(classifyTakenRate(0.30), BranchClass::Mixed);
    EXPECT_EQ(classifyTakenRate(0.5), BranchClass::Mixed);
    EXPECT_EQ(classifyTakenRate(0.699), BranchClass::Mixed);
    EXPECT_EQ(classifyTakenRate(0.70), BranchClass::MostlyTaken);
    EXPECT_EQ(classifyTakenRate(0.949), BranchClass::MostlyTaken);
    EXPECT_EQ(classifyTakenRate(0.95), BranchClass::AlwaysTaken);
    EXPECT_EQ(classifyTakenRate(1.0), BranchClass::AlwaysTaken);
}

TEST(BranchClasses, Names)
{
    EXPECT_STREQ(branchClassName(BranchClass::Mixed), "mixed");
    EXPECT_STREQ(branchClassName(BranchClass::AlwaysTaken),
                 "always-taken");
    EXPECT_STREQ(branchClassName(BranchClass::AlwaysNotTaken),
                 "always-not-taken");
}

TEST(BranchClasses, AggregatesHandBuiltStats)
{
    PredictionStats stats(/*track_sites=*/true);
    // Branch A: 10 instances, all taken, 1 misp.
    for (int i = 0; i < 10; ++i)
        stats.record(0x100, true, i != 0);
    // Branch B: 4 instances, half taken.
    stats.record(0x200, true, true);
    stats.record(0x200, false, true);
    stats.record(0x200, true, true);
    stats.record(0x200, false, true);

    BranchClassReport report = classifyBranches(stats);
    EXPECT_EQ(report.totalInstances, 14u);
    EXPECT_EQ(report[BranchClass::AlwaysTaken].staticBranches, 1u);
    EXPECT_EQ(report[BranchClass::AlwaysTaken].instances, 10u);
    EXPECT_EQ(report[BranchClass::AlwaysTaken].mispredicted, 1u);
    EXPECT_EQ(report[BranchClass::Mixed].staticBranches, 1u);
    EXPECT_EQ(report[BranchClass::Mixed].instances, 4u);
    EXPECT_EQ(report[BranchClass::Mixed].mispredicted, 2u);
    EXPECT_NEAR(report.dynamicShare(BranchClass::AlwaysTaken),
                10.0 / 14.0, 1e-12);
}

TEST(BranchClasses, EmptyStats)
{
    PredictionStats stats(true);
    BranchClassReport report = classifyBranches(stats);
    EXPECT_EQ(report.totalInstances, 0u);
    EXPECT_DOUBLE_EQ(report.dynamicShare(BranchClass::Mixed), 0.0);
}

TEST(BranchClasses, RenderContainsEveryClass)
{
    PredictionStats stats(true);
    stats.record(0x100, true, true);
    std::string out = classifyBranches(stats).render();
    for (std::size_t i = 0; i < branchClassCount; ++i) {
        EXPECT_NE(out.find(branchClassName(
                      static_cast<BranchClass>(i))),
                  std::string::npos);
    }
}

TEST(BranchClasses, WorkloadIsBiasDominated)
{
    // The paper's Section 2 claim, measured end to end: extreme-bias
    // classes dominate the dynamic stream of a large profile.
    MemoryTrace trace = generateProfileTrace("real_gcc", 300'000);
    auto p = makePredictor("addr:12");
    PredictionStats stats = runPredictor(trace, *p, true);
    BranchClassReport report = classifyBranches(stats);

    double extreme =
        report.dynamicShare(BranchClass::AlwaysTaken) +
        report.dynamicShare(BranchClass::AlwaysNotTaken) +
        report.dynamicShare(BranchClass::MostlyTaken) +
        report.dynamicShare(BranchClass::MostlyNotTaken);
    EXPECT_GT(extreme, 0.65);

    // Mixed branches must mispredict far worse than always-* ones.
    EXPECT_GT(report[BranchClass::Mixed].mispRate(),
              report[BranchClass::AlwaysTaken].mispRate());
}

TEST(BranchClasses, MispredictionsSumAcrossClasses)
{
    MemoryTrace trace = generateProfileTrace("compress", 100'000);
    auto p = makePredictor("gshare:10:0");
    PredictionStats stats = runPredictor(trace, *p, true);
    BranchClassReport report = classifyBranches(stats);

    std::uint64_t total_misp = 0, total_inst = 0;
    for (std::size_t i = 0; i < branchClassCount; ++i) {
        total_misp += report.rows[i].mispredicted;
        total_inst += report.rows[i].instances;
    }
    EXPECT_EQ(total_misp, stats.mispredicts());
    EXPECT_EQ(total_inst, stats.lookups());
}

/**
 * @file
 * Tests for the trace filter / window adaptors.
 */

#include <gtest/gtest.h>

#include "trace/memory_trace.hh"
#include "trace/trace_filter.hh"
#include "trace/trace_stats.hh"

using namespace bpsim;

namespace {

MemoryTrace
mixedTrace()
{
    MemoryTrace t("mixed");
    for (int i = 0; i < 10; ++i) {
        BranchRecord user;
        user.pc = 0x400100 + 4 * i;
        user.target = 0x400200;
        user.type = BranchType::Conditional;
        user.taken = i % 2 == 0;
        user.instGap = 3;
        user.kernel = false;
        t.append(user);

        BranchRecord kern;
        kern.pc = 0x80400100 + 4 * i;
        kern.target = 0x80400200;
        kern.type = i % 3 == 0 ? BranchType::Call
                               : BranchType::Conditional;
        kern.taken = true;
        kern.instGap = 2;
        kern.kernel = true;
        t.append(kern);
    }
    return t;
}

} // namespace

TEST(FilteredTrace, UserOnlyStripsKernelRecords)
{
    MemoryTrace t = mixedTrace();
    FilteredTrace f = userOnly(t);
    BranchRecord rec;
    int n = 0;
    while (f.next(rec)) {
        EXPECT_FALSE(rec.kernel);
        ++n;
    }
    EXPECT_EQ(n, 10);
    EXPECT_EQ(f.dropped(), 10u);
    EXPECT_EQ(f.name(), "mixed.user");
}

TEST(FilteredTrace, KernelOnlyKeepsKernelRecords)
{
    MemoryTrace t = mixedTrace();
    FilteredTrace f = kernelOnly(t);
    BranchRecord rec;
    int n = 0;
    while (f.next(rec)) {
        EXPECT_TRUE(rec.kernel);
        ++n;
    }
    EXPECT_EQ(n, 10);
}

TEST(FilteredTrace, ConditionalOnlyDropsOtherTypes)
{
    MemoryTrace t = mixedTrace();
    FilteredTrace f = conditionalOnly(t);
    BranchRecord rec;
    while (f.next(rec))
        EXPECT_TRUE(rec.isConditional());
    EXPECT_EQ(f.dropped(), 4u); // the i % 3 == 0 kernel calls
}

TEST(FilteredTrace, DroppedInstructionsFoldIntoGaps)
{
    // Total dynamic instructions must be preserved by filtering (the
    // dropped records' instGap + 1 lands on the next survivor).  A
    // trailing survivor is appended because instructions after the
    // last surviving record have no carrier and are legitimately lost.
    MemoryTrace t = mixedTrace();
    BranchRecord last;
    last.pc = 0x400f00;
    last.target = 0x400f80;
    last.type = BranchType::Conditional;
    last.taken = true;
    last.kernel = false;
    t.append(last);
    auto full = TraceCharacterization::measure(t);

    t.reset();
    FilteredTrace f = userOnly(t);
    auto filtered = TraceCharacterization::measure(f);

    EXPECT_EQ(filtered.dynamicInstructions(),
              full.dynamicInstructions());
    EXPECT_LT(filtered.dynamicConditionals(),
              full.dynamicConditionals());
}

TEST(FilteredTrace, ResetRestartsAndClearsDropCount)
{
    MemoryTrace t = mixedTrace();
    FilteredTrace f = userOnly(t);
    BranchRecord rec;
    while (f.next(rec)) {
    }
    f.reset();
    EXPECT_EQ(f.dropped(), 0u);
    ASSERT_TRUE(f.next(rec));
    EXPECT_EQ(rec.pc, 0x400100u);
}

TEST(FilteredTrace, TrailingDroppedRecordsEndTheStream)
{
    MemoryTrace t("tail");
    BranchRecord rec;
    rec.pc = 0x100;
    rec.type = BranchType::Conditional;
    rec.kernel = true;
    t.append(rec);
    FilteredTrace f = userOnly(t);
    BranchRecord out;
    EXPECT_FALSE(f.next(out));
    EXPECT_EQ(f.dropped(), 1u);
}

TEST(WindowedTrace, SkipAndLimit)
{
    MemoryTrace t = mixedTrace(); // 20 records
    WindowedTrace w(t, 5, 3);
    BranchRecord rec;
    int n = 0;
    while (w.next(rec))
        ++n;
    EXPECT_EQ(n, 3);
}

TEST(WindowedTrace, ZeroLimitMeansUnbounded)
{
    MemoryTrace t = mixedTrace();
    WindowedTrace w(t, 18, 0);
    BranchRecord rec;
    int n = 0;
    while (w.next(rec))
        ++n;
    EXPECT_EQ(n, 2);
}

TEST(WindowedTrace, SkipBeyondEndYieldsNothing)
{
    MemoryTrace t = mixedTrace();
    WindowedTrace w(t, 100, 5);
    BranchRecord rec;
    EXPECT_FALSE(w.next(rec));
}

TEST(WindowedTrace, ResetReplays)
{
    MemoryTrace t = mixedTrace();
    WindowedTrace w(t, 2, 2);
    BranchRecord first_run[2], second_run[2];
    ASSERT_TRUE(w.next(first_run[0]));
    ASSERT_TRUE(w.next(first_run[1]));
    w.reset();
    ASSERT_TRUE(w.next(second_run[0]));
    ASSERT_TRUE(w.next(second_run[1]));
    EXPECT_EQ(first_run[0], second_run[0]);
    EXPECT_EQ(first_run[1], second_run[1]);
}

TEST(WindowedTrace, ComposesWithFilters)
{
    MemoryTrace t = mixedTrace();
    FilteredTrace user = userOnly(t);
    WindowedTrace w(user, 1, 4, "user-window");
    BranchRecord rec;
    int n = 0;
    while (w.next(rec)) {
        EXPECT_FALSE(rec.kernel);
        ++n;
    }
    EXPECT_EQ(n, 4);
    EXPECT_EQ(w.name(), "user-window");
}

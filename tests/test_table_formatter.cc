/**
 * @file
 * Tests for the ASCII/CSV table renderer behind the Table 1/2/3 benches.
 */

#include <gtest/gtest.h>

#include "stats/table_formatter.hh"

using namespace bpsim;

TEST(TableFormatter, RendersAlignedColumns)
{
    TableFormatter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    // Every data line has the same length (alignment).
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        auto next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len) << "ragged line";
        pos = next + 1;
    }
}

TEST(TableFormatter, SeparatorAddsRule)
{
    TableFormatter t({"c"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Expect at least 4 separator rules: top, under header, middle,
    // bottom.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    EXPECT_GE(rules, 4u);
}

TEST(TableFormatter, CountsRowsAndColumns)
{
    TableFormatter t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableFormatterDeathTest, WrongArityPanics)
{
    TableFormatter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableFormatter, CsvEscapesSpecials)
{
    TableFormatter t({"k", "v"});
    t.addRow({"plain", "a,b"});
    t.addRow({"quote", "say \"hi\""});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("k,v\n"), std::string::npos);
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableFormatter, CsvSkipsSeparators)
{
    TableFormatter t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "a\n1\n2\n");
}

TEST(TableFormatterHelpers, PercentFormatting)
{
    EXPECT_EQ(TableFormatter::percent(0.0479), "4.79%");
    EXPECT_EQ(TableFormatter::percent(0.5, 0), "50%");
    EXPECT_EQ(TableFormatter::percent(0.12345, 3), "12.345%");
}

TEST(TableFormatterHelpers, IntegerGrouping)
{
    EXPECT_EQ(TableFormatter::integer(0), "0");
    EXPECT_EQ(TableFormatter::integer(999), "999");
    EXPECT_EQ(TableFormatter::integer(1000), "1,000");
    EXPECT_EQ(TableFormatter::integer(83947354), "83,947,354");
}

TEST(TableFormatterHelpers, ConfigLabel)
{
    EXPECT_EQ(TableFormatter::configLabel(6, 3), "2^6 x 2^3");
    EXPECT_EQ(TableFormatter::configLabel(0, 9), "2^0 x 2^9");
}

/**
 * @file
 * Tests for the configuration sweep engine, most importantly the
 * equivalence between the fast sweep path and the online
 * TwoLevelPredictor for every scheme.
 */

#include <gtest/gtest.h>

#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace &
sharedWorkload()
{
    static MemoryTrace trace = [] {
        WorkloadParams p;
        p.name = "sweep-unit";
        p.seed = 21;
        p.staticBranches = 150;
        p.functionCount = 15;
        p.targetConditionals = 30'000;
        return generateTrace(p);
    }();
    return trace;
}

double
onlineMisp(BranchPredictor &p)
{
    MemoryTrace &t = sharedWorkload();
    t.reset();
    return runPredictor(t, p).mispRate();
}

} // namespace

TEST(Sweep, TierAndPointCounts)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 7;
    SweepResult r = sweepScheme(t, SchemeKind::GAs, o);
    ASSERT_EQ(r.misprediction.tiers().size(), 4u);
    for (const auto &tier : r.misprediction.tiers())
        EXPECT_EQ(tier.points.size(), tier.totalBits + 1);
}

TEST(Sweep, DegenerateSchemesHaveOnePointPerTier)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 8;
    SweepResult addr = sweepScheme(t, SchemeKind::AddressIndexed, o);
    SweepResult gag = sweepScheme(t, SchemeKind::GAg, o);
    for (const auto &tier : addr.misprediction.tiers()) {
        ASSERT_EQ(tier.points.size(), 1u);
        EXPECT_EQ(tier.points[0].rowBits, 0u);
    }
    for (const auto &tier : gag.misprediction.tiers()) {
        ASSERT_EQ(tier.points.size(), 1u);
        EXPECT_EQ(tier.points[0].colBits, 0u);
    }
}

TEST(Sweep, RatesAreValidProbabilities)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 10;
    for (SchemeKind kind :
         {SchemeKind::GAs, SchemeKind::Gshare, SchemeKind::Path,
          SchemeKind::PAsPerfect}) {
        SweepResult r = sweepScheme(t, kind, o);
        for (const auto &tier : r.misprediction.tiers()) {
            for (const auto &pt : tier.points) {
                EXPECT_GE(pt.value, 0.0);
                EXPECT_LE(pt.value, 1.0);
            }
        }
        for (const auto &tier : r.aliasing.tiers()) {
            for (const auto &pt : tier.points) {
                EXPECT_GE(pt.value, 0.0);
                EXPECT_LE(pt.value, 1.0);
            }
        }
    }
}

TEST(Sweep, SchemeNames)
{
    EXPECT_STREQ(schemeKindName(SchemeKind::AddressIndexed), "addr");
    EXPECT_STREQ(schemeKindName(SchemeKind::GAg), "GAg");
    EXPECT_STREQ(schemeKindName(SchemeKind::GAs), "GAs");
    EXPECT_STREQ(schemeKindName(SchemeKind::Gshare), "gshare");
    EXPECT_STREQ(schemeKindName(SchemeKind::Path), "path");
    EXPECT_STREQ(schemeKindName(SchemeKind::PAsPerfect), "PAs(inf)");
    EXPECT_STREQ(schemeKindName(SchemeKind::PAsFinite), "PAs(bht)");
}

TEST(Sweep, BhtMissRateReported)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 6;
    o.maxTotalBits = 6;
    o.bhtEntries = 32;
    o.bhtAssoc = 4;
    SweepResult r = sweepScheme(t, SchemeKind::PAsFinite, o);
    EXPECT_GT(r.bhtMissRate, 0.0);
    EXPECT_LT(r.bhtMissRate, 1.0);
}

// --- The fast-path / online equivalence matrix ---

struct EquivCase
{
    SchemeKind kind;
    unsigned rowBits;
    unsigned colBits;
};

class SweepEquivalence : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(SweepEquivalence, FastPathMatchesOnlinePredictor)
{
    const EquivCase &c = GetParam();
    PreparedTrace prepared(sharedWorkload());

    SweepOptions o;
    o.trackAliasing = true;
    o.bhtEntries = 64;
    o.bhtAssoc = 4;
    ConfigResult fast =
        simulateConfig(prepared, c.kind, c.rowBits, c.colBits, o);

    std::unique_ptr<TwoLevelPredictor> online;
    switch (c.kind) {
      case SchemeKind::AddressIndexed:
        online = makeAddressIndexed(c.colBits, true);
        break;
      case SchemeKind::GAg:
        online = makeGAg(c.rowBits, true);
        break;
      case SchemeKind::GAs:
        online = makeGAs(c.rowBits, c.colBits, true);
        break;
      case SchemeKind::Gshare:
        online = makeGshare(c.rowBits, c.colBits, true);
        break;
      case SchemeKind::Path:
        online = makePath(c.rowBits, c.colBits, 2, true);
        break;
      case SchemeKind::PAsPerfect:
        online = makePAsPerfect(c.rowBits, c.colBits, true);
        break;
      case SchemeKind::PAsFinite:
        online = makePAsFinite(c.rowBits, c.colBits, 64, 4, true);
        break;
      case SchemeKind::Tage:
      case SchemeKind::Perceptron:
        FAIL() << "zoo schemes have no TwoLevelPredictor twin";
        break;
    }

    double online_misp = onlineMisp(*online);
    EXPECT_NEAR(fast.mispRate, online_misp, 1e-12)
        << "scheme " << schemeKindName(c.kind) << " 2^" << c.rowBits
        << " x 2^" << c.colBits;

    const AliasTracker *alias = online->pht().aliasStats();
    ASSERT_NE(alias, nullptr);
    EXPECT_NEAR(fast.aliasRate, alias->aliasRate(), 1e-12);
    EXPECT_NEAR(fast.harmlessFraction, alias->harmlessFraction(),
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SweepEquivalence,
    ::testing::Values(
        EquivCase{SchemeKind::AddressIndexed, 0, 8},
        EquivCase{SchemeKind::AddressIndexed, 0, 0},
        EquivCase{SchemeKind::GAg, 8, 0},
        EquivCase{SchemeKind::GAg, 3, 0},
        EquivCase{SchemeKind::GAs, 5, 4},
        EquivCase{SchemeKind::GAs, 0, 6},
        EquivCase{SchemeKind::GAs, 9, 1},
        EquivCase{SchemeKind::Gshare, 6, 3},
        EquivCase{SchemeKind::Gshare, 8, 0},
        EquivCase{SchemeKind::Gshare, 0, 5},
        EquivCase{SchemeKind::Path, 6, 3},
        EquivCase{SchemeKind::Path, 4, 0},
        EquivCase{SchemeKind::PAsPerfect, 6, 3},
        EquivCase{SchemeKind::PAsPerfect, 0, 7},
        EquivCase{SchemeKind::PAsPerfect, 10, 0},
        EquivCase{SchemeKind::PAsFinite, 6, 3},
        EquivCase{SchemeKind::PAsFinite, 4, 4},
        EquivCase{SchemeKind::PAsFinite, 0, 6}));

namespace {

/** Exact (bit-identical) surface comparison. */
void
expectSurfacesIdentical(const Surface &a, const Surface &b,
                        const char *what)
{
    ASSERT_EQ(a.tiers().size(), b.tiers().size()) << what;
    for (std::size_t t = 0; t < a.tiers().size(); ++t) {
        const SurfaceTier &ta = a.tiers()[t];
        const SurfaceTier &tb = b.tiers()[t];
        ASSERT_EQ(ta.totalBits, tb.totalBits) << what;
        ASSERT_EQ(ta.points.size(), tb.points.size()) << what;
        for (std::size_t p = 0; p < ta.points.size(); ++p) {
            EXPECT_EQ(ta.points[p].rowBits, tb.points[p].rowBits)
                << what;
            EXPECT_EQ(ta.points[p].colBits, tb.points[p].colBits)
                << what;
            // EXPECT_EQ, not NEAR: parallel execution must be
            // bit-identical to the serial merge order.
            EXPECT_EQ(ta.points[p].value, tb.points[p].value)
                << what << " tier 2^" << ta.totalBits << " rows 2^"
                << ta.points[p].rowBits;
        }
    }
}

} // namespace

TEST(Sweep, PlanEnumeratesMergeOrder)
{
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 6;
    auto jobs = planSweep(SchemeKind::GAs, o);
    ASSERT_EQ(jobs.size(), 5u + 6u + 7u);
    EXPECT_EQ(jobs.front().totalBits, 4u);
    EXPECT_EQ(jobs.front().rowBits, 0u);
    EXPECT_EQ(jobs.back().totalBits, 6u);
    EXPECT_EQ(jobs.back().rowBits, 6u);
    for (const auto &job : jobs)
        EXPECT_EQ(job.rowBits + job.colBits, job.totalBits);

    EXPECT_EQ(planSweep(SchemeKind::AddressIndexed, o).size(), 3u);
    EXPECT_EQ(planSweep(SchemeKind::GAg, o).size(), 3u);
}

TEST(Sweep, ParallelSurfacesBitIdenticalToSerialForEveryScheme)
{
    PreparedTrace t(sharedWorkload());
    for (SchemeKind kind :
         {SchemeKind::AddressIndexed, SchemeKind::GAg, SchemeKind::GAs,
          SchemeKind::Gshare, SchemeKind::Path, SchemeKind::PAsPerfect,
          SchemeKind::PAsFinite}) {
        SweepOptions serial;
        serial.minTotalBits = 4;
        serial.maxTotalBits = 9;
        serial.trackAliasing = true;
        serial.bhtEntries = 64;
        serial.threads = 1;
        SweepOptions parallel = serial;
        parallel.threads = 4;

        SweepResult rs = sweepScheme(t, kind, serial);
        SweepResult rp = sweepScheme(t, kind, parallel);
        const char *name = schemeKindName(kind);
        expectSurfacesIdentical(rs.misprediction, rp.misprediction,
                                name);
        expectSurfacesIdentical(rs.aliasing, rp.aliasing, name);
        expectSurfacesIdentical(rs.harmless, rp.harmless, name);
        EXPECT_EQ(rs.bhtMissRate, rp.bhtMissRate) << name;
    }
}

TEST(Sweep, ThreadsZeroSelectsHardwareConcurrencyAndStaysIdentical)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions serial;
    serial.minTotalBits = 5;
    serial.maxTotalBits = 8;
    serial.threads = 1;
    SweepOptions hw = serial;
    hw.threads = 0; // all hardware threads
    SweepResult rs = sweepScheme(t, SchemeKind::Gshare, serial);
    SweepResult rh = sweepScheme(t, SchemeKind::Gshare, hw);
    expectSurfacesIdentical(rs.misprediction, rh.misprediction,
                            "gshare threads=0");
}

TEST(Sweep, SimulateConfigReportsBhtMissRate)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.bhtEntries = 32;
    o.bhtAssoc = 2;
    ConfigResult finite =
        simulateConfig(t, SchemeKind::PAsFinite, 5, 3, o);
    EXPECT_GT(finite.bhtMissRate, 0.0);
    EXPECT_LT(finite.bhtMissRate, 1.0);

    // Inapplicable for schemes without a first-level table.
    ConfigResult gas = simulateConfig(t, SchemeKind::GAs, 5, 3, o);
    EXPECT_LT(gas.bhtMissRate, 0.0);
}

TEST(Sweep, StreamCacheReuseMatchesTransientCalls)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.trackAliasing = true;
    o.bhtEntries = 64;

    StreamCache cache(t, o);
    for (SchemeKind kind :
         {SchemeKind::Path, SchemeKind::PAsFinite, SchemeKind::GAs}) {
        for (unsigned r : {3u, 5u}) {
            ConfigResult cached = simulateConfig(cache, kind, r, 4);
            ConfigResult fresh = simulateConfig(t, kind, r, 4, o);
            EXPECT_EQ(cached.mispRate, fresh.mispRate);
            EXPECT_EQ(cached.aliasRate, fresh.aliasRate);
            EXPECT_EQ(cached.harmlessFraction, fresh.harmlessFraction);
            EXPECT_EQ(cached.bhtMissRate, fresh.bhtMissRate);
        }
    }
}

TEST(Sweep, StreamCacheDoesNotRecomputeFirstLevelStreams)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.bhtEntries = 64;

    StreamCache cache(t, o);
    EXPECT_EQ(cache.streamBuilds(), 0u);

    // First probes build exactly one stream each: the path stream and
    // one BHT stream per distinct row width.
    simulateConfig(cache, SchemeKind::Path, 4, 3);
    EXPECT_EQ(cache.streamBuilds(), 1u);
    simulateConfig(cache, SchemeKind::PAsFinite, 4, 3);
    EXPECT_EQ(cache.streamBuilds(), 2u);
    simulateConfig(cache, SchemeKind::PAsFinite, 6, 2);
    EXPECT_EQ(cache.streamBuilds(), 3u);

    // Repeated probes -- same widths, different column splits, plus
    // schemes that need no first-level stream -- reuse what exists.
    for (int round = 0; round < 3; ++round) {
        simulateConfig(cache, SchemeKind::Path, 4, 2);
        simulateConfig(cache, SchemeKind::PAsFinite, 4, 5);
        simulateConfig(cache, SchemeKind::PAsFinite, 6, 0);
        simulateConfig(cache, SchemeKind::GAs, 5, 5);
        simulateConfig(cache, SchemeKind::Gshare, 5, 5);
    }
    EXPECT_EQ(cache.streamBuilds(), 3u);

    // prepare() for already-covered jobs is a no-op too.
    std::vector<ConfigJob> jobs{
        ConfigJob{SchemeKind::Path, 7, 4, 3},
        ConfigJob{SchemeKind::PAsFinite, 7, 6, 1},
    };
    cache.prepare(jobs, 2);
    EXPECT_EQ(cache.streamBuilds(), 3u);
}

TEST(Sweep, FusedSweepBitIdenticalToPerConfigForEveryScheme)
{
    PreparedTrace t(sharedWorkload());
    for (SchemeKind kind :
         {SchemeKind::AddressIndexed, SchemeKind::GAg, SchemeKind::GAs,
          SchemeKind::Gshare, SchemeKind::Path, SchemeKind::PAsPerfect,
          SchemeKind::PAsFinite}) {
        SweepOptions fused;
        fused.minTotalBits = 4;
        fused.maxTotalBits = 9;
        fused.trackAliasing = false;
        fused.bhtEntries = 64;
        fused.fuseJobs = true;
        SweepOptions per_config = fused;
        per_config.fuseJobs = false;

        SweepResult rf = sweepScheme(t, kind, fused);
        SweepResult rp = sweepScheme(t, kind, per_config);
        const char *name = schemeKindName(kind);
        expectSurfacesIdentical(rf.misprediction, rp.misprediction,
                                name);
        EXPECT_EQ(rf.bhtMissRate, rp.bhtMissRate) << name;
    }
}

TEST(Sweep, FusedParallelBitIdenticalToFusedSerial)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions serial;
    serial.minTotalBits = 4;
    serial.maxTotalBits = 9;
    serial.trackAliasing = false;
    serial.threads = 1;
    SweepOptions parallel = serial;
    parallel.threads = 4; // groups are chunked differently too
    SweepResult rs = sweepScheme(t, SchemeKind::Gshare, serial);
    SweepResult rp = sweepScheme(t, SchemeKind::Gshare, parallel);
    expectSurfacesIdentical(rs.misprediction, rp.misprediction,
                            "gshare fused threads");
}

TEST(Sweep, AliasingSweepIgnoresFusionKnob)
{
    // AliasTracker sweeps always take the per-config fallback; the
    // knob must not perturb Figure 5 semantics.
    PreparedTrace t(sharedWorkload());
    SweepOptions on;
    on.minTotalBits = 4;
    on.maxTotalBits = 7;
    on.trackAliasing = true;
    on.fuseJobs = true;
    SweepOptions off = on;
    off.fuseJobs = false;
    SweepResult ra = sweepScheme(t, SchemeKind::GAs, on);
    SweepResult rb = sweepScheme(t, SchemeKind::GAs, off);
    expectSurfacesIdentical(ra.misprediction, rb.misprediction,
                            "aliasing misp");
    expectSurfacesIdentical(ra.aliasing, rb.aliasing, "aliasing rate");
    expectSurfacesIdentical(ra.harmless, rb.harmless, "harmless");
}

TEST(Sweep, FusedGroupPlanPartitionsJobsByStream)
{
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 8;
    o.trackAliasing = false;

    // GAs: every job shares the global-history stream -> one fused
    // group at threads=1, covering all jobs exactly once.
    auto jobs = planSweep(SchemeKind::GAs, o);
    auto groups = planFusedGroups(jobs, o, 1);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_TRUE(groups[0].fused);
    EXPECT_EQ(groups[0].jobs.size(), jobs.size());

    // threads=3 chunks the group without losing or duplicating jobs.
    auto chunked = planFusedGroups(jobs, o, 3);
    EXPECT_EQ(chunked.size(), 3u);
    std::vector<bool> seen(jobs.size(), false);
    for (const auto &g : chunked) {
        EXPECT_TRUE(g.fused);
        for (std::size_t idx : g.jobs) {
            ASSERT_LT(idx, jobs.size());
            EXPECT_FALSE(seen[idx]) << "job " << idx << " duplicated";
            seen[idx] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "job " << i << " dropped";

    // PAsFinite streams depend on the row width: one group per
    // distinct rowBits (widths 0..8 across tiers 4..8).
    auto finite_jobs = planSweep(SchemeKind::PAsFinite, o);
    auto finite_groups = planFusedGroups(finite_jobs, o, 1);
    EXPECT_EQ(finite_groups.size(), 9u);
    for (const auto &g : finite_groups) {
        for (std::size_t idx : g.jobs)
            EXPECT_EQ(finite_jobs[idx].rowBits, g.streamRowBits);
    }

    // Aliasing tracking forces one per-config fallback group per job.
    SweepOptions aliasing = o;
    aliasing.trackAliasing = true;
    auto fallback = planFusedGroups(jobs, aliasing, 4);
    ASSERT_EQ(fallback.size(), jobs.size());
    for (const auto &g : fallback) {
        EXPECT_FALSE(g.fused);
        EXPECT_EQ(g.jobs.size(), 1u);
    }
}

TEST(Sweep, FusedExecutionDoesZeroLockedLookupsAfterPrepare)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 7;
    o.trackAliasing = false;
    o.bhtEntries = 64;

    for (SchemeKind kind : {SchemeKind::Gshare, SchemeKind::Path,
                            SchemeKind::PAsFinite}) {
        auto jobs = planSweep(kind, o);
        auto groups = planFusedGroups(jobs, o, 2);
        StreamCache cache(t, o);
        cache.prepare(jobs, 1);
        EXPECT_EQ(cache.lockedLookups(), 0u) << schemeKindName(kind);

        std::vector<ConfigResult> slots(jobs.size());
        for (const auto &group : groups)
            runFusedGroup(group, jobs, cache, slots.data());
        EXPECT_EQ(cache.lockedLookups(), 0u)
            << schemeKindName(kind)
            << ": fused execution took the lazy-build lock";
    }

    // Contrast: an unprepared cache must count its locked lookups.
    StreamCache lazy(t, o);
    lazy.stream(SchemeKind::Path, 3);
    EXPECT_EQ(lazy.lockedLookups(), 1u);
    lazy.bhtMissRate(4);
    EXPECT_EQ(lazy.lockedLookups(), 2u);
    // A prepare() over those same needs re-publishes the fast table;
    // repeated lookups stop locking.
    std::vector<ConfigJob> jobs{ConfigJob{SchemeKind::Path, 7, 3, 4},
                                ConfigJob{SchemeKind::PAsFinite, 7, 4,
                                          3}};
    lazy.prepare(jobs, 1);
    lazy.stream(SchemeKind::Path, 3);
    lazy.stream(SchemeKind::PAsFinite, 4);
    lazy.bhtMissRate(4);
    EXPECT_EQ(lazy.lockedLookups(), 2u);
}

TEST(Sweep, ForcedSimdTargetsBitIdenticalThroughSweepScheme)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions base;
    base.minTotalBits = 4;
    base.maxTotalBits = 9;
    base.trackAliasing = false;
    base.bhtEntries = 64;
    base.simd = SimdTarget::Scalar;

    for (SchemeKind kind : {SchemeKind::GAs, SchemeKind::Gshare,
                            SchemeKind::PAsFinite}) {
        SweepResult scalar = sweepScheme(t, kind, base);
        EXPECT_EQ(scalar.kernel.target, SimdTarget::Scalar);
        for (SimdTarget target : supportedSimdTargets()) {
            SweepOptions forced = base;
            forced.simd = target;
            SweepResult r = sweepScheme(t, kind, forced);
            EXPECT_EQ(r.kernel.target, target);
            expectSurfacesIdentical(scalar.misprediction,
                                    r.misprediction,
                                    simdTargetName(target));
            EXPECT_EQ(scalar.bhtMissRate, r.bhtMissRate)
                << simdTargetName(target);
        }
    }
}

TEST(Sweep, KernelTelemetryDescribesFusedExecution)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 9;
    o.trackAliasing = false;

    SweepResult r = sweepScheme(t, SchemeKind::GAs, o);
    const std::size_t jobs = planSweep(SchemeKind::GAs, o).size();
    EXPECT_EQ(r.kernel.target, resolveSimdTarget(o.simd));
    EXPECT_EQ(r.kernel.fusedGroups, 1u); // one stream, one thread
    EXPECT_EQ(r.kernel.fallbackJobs, 0u);
    EXPECT_EQ(r.kernel.lanes, jobs);
    EXPECT_EQ(r.kernel.wideLanes, 0u); // paper tiers are all narrow
    EXPECT_GT(r.kernel.laneBatches, 0u);
    // 30k branches in 2 KiB blocks, one decode pass per group.
    EXPECT_EQ(r.kernel.blocksReplayed, (t.size() + 2047) / 2048);
    EXPECT_DOUBLE_EQ(r.kernel.lanesPerGroup(),
                     static_cast<double>(jobs));
    // Narrow lanes read exactly one packed 4-byte record per branch.
    EXPECT_DOUBLE_EQ(r.kernel.hotBytesPerBranch(), 4.0);

    // The per-config fallback path reports fallback jobs instead.
    SweepOptions aliasing = o;
    aliasing.trackAliasing = true;
    SweepResult ra = sweepScheme(t, SchemeKind::GAs, aliasing);
    EXPECT_EQ(ra.kernel.fusedGroups, 0u);
    EXPECT_EQ(ra.kernel.lanes, 0u);
    EXPECT_EQ(ra.kernel.fallbackJobs, jobs);
    EXPECT_DOUBLE_EQ(ra.kernel.hotBytesPerBranch(), 0.0);
}

TEST(Sweep, StreamCacheReleasesStreamsAfterLastConsumer)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 4;
    o.maxTotalBits = 8;
    o.trackAliasing = false;
    o.bhtEntries = 64;

    // PAsFinite needs one stream per row width: tiers 4..8 use widths
    // 0..8, nine streams of 8 bytes per branch each.
    auto jobs = planSweep(SchemeKind::PAsFinite, o);
    auto groups = planFusedGroups(jobs, o, 1);
    ASSERT_EQ(groups.size(), 9u);

    // Without a release plan, eager preparation keeps all nine
    // resident for the cache's whole lifetime.
    {
        StreamCache eager(t, o);
        eager.prepare(jobs, 1);
        EXPECT_EQ(eager.residentStreams(), 9u);
        EXPECT_EQ(eager.peakResidentStreams(), 9u);
    }

    // With the release plan and lazy serial execution, a stream dies
    // the moment its last consuming group finishes: peak residency is
    // ONE stream, not nine.
    StreamCache cache(t, o);
    cache.planRelease(groups);
    std::vector<ConfigResult> slots(jobs.size());
    for (const FusedGroup &group : groups) {
        runFusedGroup(group, jobs, cache, slots.data());
        cache.groupFinished(group);
        EXPECT_LE(cache.residentStreams(), 1u);
    }
    EXPECT_EQ(cache.residentStreams(), 0u);
    EXPECT_EQ(cache.peakResidentStreams(), 1u);
    // The sweep-level miss rate is recorded at build time and must
    // survive the buffers being freed.
    EXPECT_GT(cache.sweepBhtMissRate(), 0.0);

    // Releasing must not change any result.
    StreamCache keep(t, o);
    keep.prepare(jobs, 1);
    std::vector<ConfigResult> expected(jobs.size());
    for (const FusedGroup &group : groups)
        runFusedGroup(group, jobs, keep, expected.data());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(slots[i].mispRate, expected[i].mispRate) << i;
        EXPECT_EQ(slots[i].bhtMissRate, expected[i].bhtMissRate) << i;
    }
}

TEST(Sweep, ReleasedStreamRebuildsOnLaterLookup)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 5;
    o.maxTotalBits = 5;
    o.trackAliasing = false;

    auto jobs = planSweep(SchemeKind::Path, o);
    auto groups = planFusedGroups(jobs, o, 1);
    StreamCache cache(t, o);
    cache.planRelease(groups);
    std::vector<ConfigResult> slots(jobs.size());
    for (const FusedGroup &group : groups) {
        runFusedGroup(group, jobs, cache, slots.data());
        cache.groupFinished(group);
    }
    EXPECT_EQ(cache.residentStreams(), 0u);
    const std::size_t builds = cache.streamBuilds();

    // A post-release lookup transparently rebuilds the stream.
    const std::vector<std::uint64_t> *stream =
        cache.stream(SchemeKind::Path, 3);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->size(), t.size());
    EXPECT_EQ(cache.streamBuilds(), builds + 1);
    EXPECT_EQ(cache.residentStreams(), 1u);
}

TEST(Sweep, SweepAgreesWithSimulateConfig)
{
    PreparedTrace t(sharedWorkload());
    SweepOptions o;
    o.minTotalBits = 8;
    o.maxTotalBits = 8;
    SweepResult r = sweepScheme(t, SchemeKind::Gshare, o);
    for (unsigned rbits = 0; rbits <= 8; ++rbits) {
        ConfigResult single =
            simulateConfig(t, SchemeKind::Gshare, rbits, 8 - rbits, o);
        auto from_sweep = r.misprediction.at(8, rbits);
        ASSERT_TRUE(from_sweep.has_value());
        EXPECT_NEAR(*from_sweep, single.mispRate, 1e-12)
            << "rows 2^" << rbits;
    }
}

/**
 * @file
 * Unit and statistical tests for the deterministic RNG and samplers that
 * drive workload synthesis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"

using namespace bpsim;

TEST(Pcg32, SameSeedSameStream)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(1, 100), b(1, 200);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, NextBoundedStaysInBounds)
{
    Pcg32 rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Pcg32, NextBoundedOneAlwaysZero)
{
    Pcg32 rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Pcg32, NextBoundedIsRoughlyUniform)
{
    Pcg32 rng(11);
    const std::uint32_t bound = 8;
    std::vector<int> counts(bound, 0);
    const int draws = 80'000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(bound)];
    for (std::uint32_t v = 0; v < bound; ++v) {
        double expect = static_cast<double>(draws) / bound;
        EXPECT_NEAR(counts[v], expect, expect * 0.1) << "value " << v;
    }
}

TEST(Pcg32, NextDoubleInUnitInterval)
{
    Pcg32 rng(13);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Pcg32, BernoulliExtremes)
{
    Pcg32 rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Pcg32, BernoulliRate)
{
    Pcg32 rng(19);
    int hits = 0;
    const int draws = 50'000;
    for (int i = 0; i < draws; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.02);
}

TEST(Pcg32, UniformIntCoversRangeInclusive)
{
    Pcg32 rng(23);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.uniformInt(3, 10);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 10);
        saw_lo |= v == 3;
        saw_hi |= v == 10;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, UniformIntDegenerateRange)
{
    Pcg32 rng(29);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Pcg32, UniformIntNegativeRange)
{
    Pcg32 rng(31);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformInt(-10, -1);
        ASSERT_GE(v, -10);
        ASSERT_LE(v, -1);
    }
}

TEST(Pcg32, GeometricMeanOne)
{
    Pcg32 rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Pcg32, GeometricAlwaysPositive)
{
    Pcg32 rng(41);
    for (int i = 0; i < 5000; ++i)
        ASSERT_GE(rng.geometric(4.0), 1u);
}

TEST(Pcg32, GeometricHitsItsMean)
{
    Pcg32 rng(43);
    for (double mean : {2.0, 5.0, 20.0}) {
        double sum = 0;
        const int draws = 40'000;
        for (int i = 0; i < draws; ++i)
            sum += static_cast<double>(rng.geometric(mean));
        EXPECT_NEAR(sum / draws, mean, mean * 0.06) << "mean " << mean;
    }
}

TEST(ZipfSampler, PmfSumsToOne)
{
    ZipfSampler z(100, 1.0);
    double total = 0;
    for (std::size_t k = 0; k < z.size(); ++k)
        total += z.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing)
{
    ZipfSampler z(50, 1.2);
    for (std::size_t k = 1; k < z.size(); ++k)
        EXPECT_GE(z.pmf(k - 1), z.pmf(k)) << "rank " << k;
}

TEST(ZipfSampler, ZeroExponentIsUniform)
{
    ZipfSampler z(10, 0.0);
    for (std::size_t k = 0; k < 10; ++k)
        EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf)
{
    Pcg32 rng(47);
    ZipfSampler z(20, 1.0);
    std::vector<int> counts(20, 0);
    const int draws = 100'000;
    for (int i = 0; i < draws; ++i)
        ++counts[z.sample(rng)];
    for (std::size_t k = 0; k < 5; ++k) {
        double expect = z.pmf(k) * draws;
        EXPECT_NEAR(counts[k], expect, expect * 0.1 + 30)
            << "rank " << k;
    }
}

TEST(ZipfSampler, SingleRank)
{
    Pcg32 rng(53);
    ZipfSampler z(1, 2.0);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

TEST(DiscreteSampler, RespectsWeights)
{
    Pcg32 rng(59);
    DiscreteSampler s({1.0, 3.0, 0.0, 4.0});
    std::vector<int> counts(4, 0);
    const int draws = 80'000;
    for (int i = 0; i < draws; ++i)
        ++counts[s.sample(rng)];
    EXPECT_NEAR(counts[0], draws * (1.0 / 8.0), draws * 0.01);
    EXPECT_NEAR(counts[1], draws * (3.0 / 8.0), draws * 0.015);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3], draws * (4.0 / 8.0), draws * 0.015);
}

TEST(DiscreteSamplerDeathTest, RejectsAllZeroWeights)
{
    EXPECT_DEATH(DiscreteSampler({0.0, 0.0}), "all weights zero");
}

TEST(DiscreteSamplerDeathTest, RejectsNegativeWeights)
{
    EXPECT_DEATH(DiscreteSampler({1.0, -1.0}), "negative weight");
}

/**
 * @file
 * Concurrency stress for the sweep daemon's BatchQueue: many client
 * threads hammer submitSweep() with overlapping tier ranges on one
 * trace, and every response must be bit-identical to a direct
 * SweepSession::sweep of the same request.  Correctness under
 * combining is the whole point of the queue -- a coalesced slice that
 * differs from a standalone sweep would silently corrupt results for
 * whichever client happened to share a drain.
 *
 * Run under the tsan preset (test name filter "ServiceStress") to pin
 * the queue's locking discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "service/server.hh"
#include "sim/sweep_session.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

constexpr const char *kProfile = "xlisp";
constexpr std::uint64_t kBranches = 20000;

void
expectSurfaceIdentical(const Surface &a, const Surface &b)
{
    ASSERT_EQ(a.tiers().size(), b.tiers().size());
    for (std::size_t t = 0; t < a.tiers().size(); ++t) {
        const SurfaceTier &ta = a.tiers()[t];
        const SurfaceTier &tb = b.tiers()[t];
        ASSERT_EQ(ta.totalBits, tb.totalBits);
        ASSERT_EQ(ta.points.size(), tb.points.size());
        for (std::size_t p = 0; p < ta.points.size(); ++p)
            ASSERT_EQ(std::memcmp(&ta.points[p].value,
                                  &tb.points[p].value,
                                  sizeof(double)),
                      0)
                << a.name() << " tier " << ta.totalBits << " point "
                << p;
    }
}

void
expectResultIdentical(const SweepResult &a, const SweepResult &b)
{
    expectSurfaceIdentical(a.misprediction, b.misprediction);
    expectSurfaceIdentical(a.aliasing, b.aliasing);
    expectSurfaceIdentical(a.harmless, b.harmless);
    ASSERT_EQ(
        std::memcmp(&a.bhtMissRate, &b.bhtMissRate, sizeof(double)),
        0);
}

SweepRequest
makeRequest(const TraceHash &trace, unsigned min_bits,
            unsigned max_bits, bool bypass)
{
    SweepOptions opts;
    opts.minTotalBits = min_bits;
    opts.maxTotalBits = max_bits;
    SweepRequest req{trace, SchemeKind::Gshare, opts};
    req.bypassCache = bypass;
    return req;
}

TEST(ServiceStress, ConcurrentSubmitsAreBitIdenticalToDirectSweeps)
{
    SweepServer server;
    const TraceHash trace =
        server.session().internProfile(kProfile, kBranches)
            .value()
            .hash;

    // Reference results from a plain single-threaded session; one
    // per distinct tier range the stress threads will request.
    SweepSession reference;
    const TraceHash refTrace =
        reference.internProfile(kProfile, kBranches).value().hash;
    ASSERT_EQ(refTrace, trace);
    std::map<unsigned, SweepResult> expected;
    const std::vector<std::pair<unsigned, unsigned>> ranges = {
        {4, 8}, {5, 9}, {6, 10}, {4, 10}};
    for (const auto &[lo, hi] : ranges)
        expected.emplace(
            lo * 100 + hi,
            reference.sweep(makeRequest(refTrace, lo, hi, false))
                .value()
                .result);

    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 3;
    std::barrier gate(kThreads);
    std::vector<std::string> failures(kThreads);
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (unsigned round = 0; round < kRounds; ++round) {
                const auto &[lo, hi] = ranges[(t + round)
                                              % ranges.size()];
                // Alternate bypass so every round mixes cache hits
                // with forced replays -- replays are what pile up in
                // the queue and get coalesced.
                const bool bypass = (t + round) % 2 == 0;
                gate.arrive_and_wait();
                Result<SweepResponse> response = server.submitSweep(
                    makeRequest(trace, lo, hi, bypass));
                if (!response.ok()) {
                    failures[t] = response.error().message();
                    return;
                }
                expectResultIdentical(response.value().result,
                                      expected.at(lo * 100 + hi));
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.queue.submissions, kThreads * kRounds);
    EXPECT_GE(stats.queue.drains, 1u);
    EXPECT_LE(stats.queue.drains, stats.queue.submissions);
}

TEST(ServiceStress, ContendedQueueFormsFusedGroups)
{
    SweepServer server;
    const TraceHash trace =
        server.session().internProfile(kProfile, kBranches)
            .value()
            .hash;

    // Coalescing is load-dependent: a drain only fuses requests that
    // were pending at the same time.  Slam batches of bypass sweeps
    // (bypass => always a replay => always coalescable) until a
    // multi-request drain forms a fused group; the barrier makes one
    // nearly certain on the first attempt.
    constexpr unsigned kThreads = 8;
    for (int attempt = 0; attempt < 32; ++attempt) {
        std::barrier gate(kThreads);
        std::vector<std::thread> clients;
        for (unsigned t = 0; t < kThreads; ++t) {
            clients.emplace_back([&] {
                gate.arrive_and_wait();
                Result<SweepResponse> response = server.submitSweep(
                    makeRequest(trace, 4, 7, true));
                EXPECT_TRUE(response.ok());
            });
        }
        for (std::thread &client : clients)
            client.join();
        if (server.stats().queue.batch.fusedGroupsFormed >= 1)
            break;
    }

    const ServerStats stats = server.stats();
    EXPECT_GE(stats.queue.batch.fusedGroupsFormed, 1u)
        << "no drain ever combined two requests; submissions="
        << stats.queue.submissions
        << " drains=" << stats.queue.drains;
    EXPECT_GE(stats.queue.multiRequestDrains, 1u);
    EXPECT_GE(stats.queue.batch.coalescedRequests, 2u);

    // Coalesced responses advertise themselves: at least one response
    // of a fused group must have carried the flag.  Verify via one
    // more deliberately contended round observing the flag directly.
    std::atomic<unsigned> coalesced{0};
    for (int attempt = 0;
         attempt < 32 && coalesced.load() == 0; ++attempt) {
        std::barrier gate(kThreads);
        std::vector<std::thread> clients;
        for (unsigned t = 0; t < kThreads; ++t) {
            clients.emplace_back([&] {
                gate.arrive_and_wait();
                Result<SweepResponse> response = server.submitSweep(
                    makeRequest(trace, 4, 7, true));
                if (response.ok() && response.value().coalesced)
                    coalesced.fetch_add(1);
            });
        }
        for (std::thread &client : clients)
            client.join();
    }
    EXPECT_GE(coalesced.load(), 1u);
}

} // namespace

/**
 * @file
 * Tests for the trace substrate: in-memory traces and the binary .bpt
 * file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/trace_io.hh"

using namespace bpsim;

namespace {

BranchRecord
rec(Addr pc, Addr target, BranchType type, bool taken,
    std::uint32_t gap = 0, bool kernel = false)
{
    BranchRecord r;
    r.pc = pc;
    r.target = target;
    r.type = type;
    r.taken = taken;
    r.instGap = gap;
    r.kernel = kernel;
    return r;
}

/** RAII temp file path, removed at scope exit. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_test_" + tag + "_" +
                std::to_string(::getpid()) + ".bpt")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(MemoryTrace, AppendAndIterate)
{
    MemoryTrace t("unit");
    t.append(rec(0x100, 0x200, BranchType::Conditional, true));
    t.append(rec(0x104, 0x300, BranchType::Call, true));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.conditionalCount(), 1u);
    EXPECT_EQ(t.name(), "unit");

    BranchRecord out;
    ASSERT_TRUE(t.next(out));
    EXPECT_EQ(out.pc, 0x100u);
    ASSERT_TRUE(t.next(out));
    EXPECT_EQ(out.pc, 0x104u);
    EXPECT_FALSE(t.next(out));
}

TEST(MemoryTrace, ResetRewinds)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Conditional, false));
    BranchRecord out;
    ASSERT_TRUE(t.next(out));
    ASSERT_FALSE(t.next(out));
    t.reset();
    ASSERT_TRUE(t.next(out));
    EXPECT_FALSE(out.taken);
}

TEST(MemoryTrace, IndexingAndBounds)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Return, true));
    EXPECT_EQ(t[0].type, BranchType::Return);
    EXPECT_DEATH(t[1], "out of range");
}

TEST(MemoryTrace, AppendAllDrainsSource)
{
    MemoryTrace src;
    for (int i = 0; i < 5; ++i)
        src.append(rec(0x100 + 4 * i, 0x200, BranchType::Conditional,
                       i % 2 == 0));
    MemoryTrace dst;
    dst.appendAll(src);
    EXPECT_EQ(dst.size(), 5u);
    EXPECT_EQ(dst.conditionalCount(), 5u);
}

TEST(MemoryTrace, ClearEmpties)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Conditional, true));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.conditionalCount(), 0u);
    BranchRecord out;
    EXPECT_FALSE(t.next(out));
}

TEST(BranchRecord, TypeNames)
{
    EXPECT_STREQ(branchTypeName(BranchType::Conditional), "cond");
    EXPECT_STREQ(branchTypeName(BranchType::Unconditional), "uncond");
    EXPECT_STREQ(branchTypeName(BranchType::Call), "call");
    EXPECT_STREQ(branchTypeName(BranchType::Return), "ret");
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    TempFile tmp("roundtrip");
    MemoryTrace original("round-trip-name");
    original.append(
        rec(0x00400100, 0x00400200, BranchType::Conditional, true, 7));
    original.append(
        rec(0x80400104, 0x00400300, BranchType::Call, true, 0, true));
    original.append(
        rec(0x00400108, 0x00400000, BranchType::Return, true, 3));
    original.append(rec(0x0040010C, 0x00400180,
                        BranchType::Conditional, false, 12));
    original.append(rec(0x00400110, 0x00400118,
                        BranchType::Unconditional, true, 1));

    EXPECT_EQ(saveTrace(original, tmp.path()), 5u);

    MemoryTrace loaded = loadTrace(tmp.path());
    EXPECT_EQ(loaded.name(), "round-trip-name");
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TraceIo, ReaderStreamsAndRewinds)
{
    TempFile tmp("rewind");
    MemoryTrace original("x");
    for (int i = 0; i < 10; ++i)
        original.append(rec(0x100 + 4 * i, 0x200,
                            BranchType::Conditional, i % 3 == 0));
    saveTrace(original, tmp.path());

    TraceReader reader(tmp.path());
    EXPECT_EQ(reader.recordCount(), 10u);
    BranchRecord out;
    int n = 0;
    while (reader.next(out))
        ++n;
    EXPECT_EQ(n, 10);
    reader.reset();
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out.pc, 0x100u);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TempFile tmp("empty");
    MemoryTrace original("empty");
    saveTrace(original, tmp.path());
    MemoryTrace loaded = loadTrace(tmp.path());
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.name(), "empty");
}

TEST(TraceIo, WriterPatchesCountOnClose)
{
    TempFile tmp("patch");
    {
        TraceWriter w(tmp.path(), "patched");
        w.write(rec(0x100, 0x200, BranchType::Conditional, true));
        w.write(rec(0x104, 0x200, BranchType::Conditional, false));
        EXPECT_EQ(w.recordsWritten(), 2u);
        // Destructor closes and patches.
    }
    TraceReader reader(tmp.path());
    EXPECT_EQ(reader.recordCount(), 2u);
}

TEST(TraceIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader("/nonexistent/dir/file.bpt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeathTest, GarbageFileIsFatal)
{
    TempFile tmp("garbage");
    std::FILE *f = std::fopen(tmp.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader(tmp.path()), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIo, KernelAndTakenFlagsIndependent)
{
    TempFile tmp("flags");
    MemoryTrace original("flags");
    original.append(
        rec(0x1, 0x2, BranchType::Conditional, false, 0, true));
    original.append(
        rec(0x5, 0x6, BranchType::Conditional, true, 0, false));
    saveTrace(original, tmp.path());
    MemoryTrace loaded = loadTrace(tmp.path());
    EXPECT_FALSE(loaded[0].taken);
    EXPECT_TRUE(loaded[0].kernel);
    EXPECT_TRUE(loaded[1].taken);
    EXPECT_FALSE(loaded[1].kernel);
}

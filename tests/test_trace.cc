/**
 * @file
 * Tests for the trace substrate: in-memory traces and the binary .bpt
 * file format.  (The adversarial corrupt-file matrix lives in
 * test_trace_robust.cc.)
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/trace_io.hh"

using namespace bpsim;

namespace {

BranchRecord
rec(Addr pc, Addr target, BranchType type, bool taken,
    std::uint32_t gap = 0, bool kernel = false)
{
    BranchRecord r;
    r.pc = pc;
    r.target = target;
    r.type = type;
    r.taken = taken;
    r.instGap = gap;
    r.kernel = kernel;
    return r;
}

/** RAII temp file path, removed at scope exit. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_test_" + tag + "_" +
                std::to_string(::getpid()) + ".bpt")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(MemoryTrace, AppendAndIterate)
{
    MemoryTrace t("unit");
    t.append(rec(0x100, 0x200, BranchType::Conditional, true));
    t.append(rec(0x104, 0x300, BranchType::Call, true));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.conditionalCount(), 1u);
    EXPECT_EQ(t.name(), "unit");

    BranchRecord out;
    ASSERT_TRUE(t.next(out));
    EXPECT_EQ(out.pc, 0x100u);
    ASSERT_TRUE(t.next(out));
    EXPECT_EQ(out.pc, 0x104u);
    EXPECT_FALSE(t.next(out));
}

TEST(MemoryTrace, ResetRewinds)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Conditional, false));
    BranchRecord out;
    ASSERT_TRUE(t.next(out));
    ASSERT_FALSE(t.next(out));
    t.reset();
    ASSERT_TRUE(t.next(out));
    EXPECT_FALSE(out.taken);
}

TEST(MemoryTrace, IndexingAndBounds)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Return, true));
    EXPECT_EQ(t[0].type, BranchType::Return);
    EXPECT_DEATH(t[1], "out of range");
}

TEST(MemoryTrace, AppendAllDrainsSource)
{
    MemoryTrace src;
    for (int i = 0; i < 5; ++i)
        src.append(rec(0x100 + 4 * i, 0x200, BranchType::Conditional,
                       i % 2 == 0));
    MemoryTrace dst;
    dst.appendAll(src);
    EXPECT_EQ(dst.size(), 5u);
    EXPECT_EQ(dst.conditionalCount(), 5u);
}

TEST(MemoryTrace, ClearEmpties)
{
    MemoryTrace t;
    t.append(rec(0x100, 0x200, BranchType::Conditional, true));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.conditionalCount(), 0u);
    BranchRecord out;
    EXPECT_FALSE(t.next(out));
}

TEST(BranchRecord, TypeNames)
{
    EXPECT_STREQ(branchTypeName(BranchType::Conditional), "cond");
    EXPECT_STREQ(branchTypeName(BranchType::Unconditional), "uncond");
    EXPECT_STREQ(branchTypeName(BranchType::Call), "call");
    EXPECT_STREQ(branchTypeName(BranchType::Return), "ret");
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    TempFile tmp("roundtrip");
    MemoryTrace original("round-trip-name");
    original.append(
        rec(0x00400100, 0x00400200, BranchType::Conditional, true, 7));
    original.append(
        rec(0x80400104, 0x00400300, BranchType::Call, true, 0, true));
    original.append(
        rec(0x00400108, 0x00400000, BranchType::Return, true, 3));
    original.append(rec(0x0040010C, 0x00400180,
                        BranchType::Conditional, false, 12));
    original.append(rec(0x00400110, 0x00400118,
                        BranchType::Unconditional, true, 1));

    EXPECT_EQ(saveTrace(original, tmp.path()).value(), 5u);

    MemoryTrace loaded = loadTrace(tmp.path()).value();
    EXPECT_EQ(loaded.name(), "round-trip-name");
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TraceIo, ReaderStreamsAndRewinds)
{
    TempFile tmp("rewind");
    MemoryTrace original("x");
    for (int i = 0; i < 10; ++i)
        original.append(rec(0x100 + 4 * i, 0x200,
                            BranchType::Conditional, i % 3 == 0));
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());

    TraceReader reader = TraceReader::open(tmp.path()).value();
    EXPECT_EQ(reader.recordCount(), 10u);
    BranchRecord out;
    int n = 0;
    while (reader.next(out))
        ++n;
    EXPECT_EQ(n, 10);
    EXPECT_TRUE(reader.status().ok());
    reader.reset();
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out.pc, 0x100u);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TempFile tmp("empty");
    MemoryTrace original("empty");
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());
    MemoryTrace loaded = loadTrace(tmp.path()).value();
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.name(), "empty");
}

TEST(TraceIo, WriterPatchesCountOnClose)
{
    TempFile tmp("patch");
    {
        TraceWriter w =
            TraceWriter::open(tmp.path(), "patched").value();
        ASSERT_TRUE(
            w.write(rec(0x100, 0x200, BranchType::Conditional, true))
                .ok());
        ASSERT_TRUE(
            w.write(rec(0x104, 0x200, BranchType::Conditional, false))
                .ok());
        EXPECT_EQ(w.recordsWritten(), 2u);
        // Destructor closes and patches.
    }
    TraceReader reader = TraceReader::open(tmp.path()).value();
    EXPECT_EQ(reader.recordCount(), 2u);
}

TEST(TraceIo, ExplicitCloseReportsSuccessAndIsIdempotent)
{
    TempFile tmp("close");
    MemoryTrace original("c");
    original.append(rec(0x100, 0x200, BranchType::Conditional, true));
    TraceWriter w = TraceWriter::open(tmp.path(), "c").value();
    ASSERT_TRUE(w.writeAll(original).ok());
    EXPECT_TRUE(w.close().ok());
    EXPECT_TRUE(w.close().ok()); // second close is a no-op
}

TEST(TraceIo, MissingFileIsAnError)
{
    auto r = TraceReader::open("/nonexistent/dir/file.bpt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("cannot open"),
              std::string::npos);

    auto load = loadTrace("/nonexistent/dir/file.bpt");
    ASSERT_FALSE(load.ok());
    EXPECT_NE(load.error().message().find("cannot open"),
              std::string::npos);
}

TEST(TraceIo, UnwritablePathIsAnError)
{
    MemoryTrace t("x");
    auto r = saveTrace(t, "/nonexistent/dir/file.bpt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("cannot create"),
              std::string::npos);
}

TEST(TraceIo, GarbageFileIsAnError)
{
    TempFile tmp("garbage");
    std::FILE *f = std::fopen(tmp.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    auto r = TraceReader::open(tmp.path());
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("bad magic"),
              std::string::npos);
}

TEST(TraceIo, KernelAndTakenFlagsIndependent)
{
    TempFile tmp("flags");
    MemoryTrace original("flags");
    original.append(
        rec(0x1, 0x2, BranchType::Conditional, false, 0, true));
    original.append(
        rec(0x5, 0x6, BranchType::Conditional, true, 0, false));
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());
    MemoryTrace loaded = loadTrace(tmp.path()).value();
    EXPECT_FALSE(loaded[0].taken);
    EXPECT_TRUE(loaded[0].kernel);
    EXPECT_TRUE(loaded[1].taken);
    EXPECT_FALSE(loaded[1].kernel);
}

TEST(TraceIo, RoundTripsThroughMemoryStream)
{
    MemoryTrace original("in-memory");
    for (int i = 0; i < 4; ++i)
        original.append(rec(0x100 + 4 * i, 0x200,
                            BranchType::Conditional, i % 2 == 0));

    auto sink = std::make_unique<MemoryByteStream>();
    auto *sink_raw = sink.get();
    TraceWriter w =
        TraceWriter::open(std::move(sink), "in-memory").value();
    ASSERT_EQ(w.writeAll(original).value(), 4u);
    // Capture the image before close() releases the stream.
    ASSERT_TRUE(w.close().ok());
    std::string image = sink_raw->bytes();

    TraceReader reader =
        TraceReader::open(std::make_unique<MemoryByteStream>(image))
            .value();
    EXPECT_EQ(reader.name(), "in-memory");
    EXPECT_EQ(reader.recordCount(), 4u);
    BranchRecord out;
    for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(reader.next(out));
        EXPECT_EQ(out, original[i]);
    }
    EXPECT_FALSE(reader.next(out));
    EXPECT_TRUE(reader.status().ok());
}

/**
 * @file
 * Tests for the bucketed distribution used in workload characterisation.
 */

#include <gtest/gtest.h>

#include "stats/distribution.hh"

using namespace bpsim;

TEST(Distribution, CountsAndMoments)
{
    Distribution d(0.0, 10.0, 10);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_NEAR(d.stddev(), 1.11803, 1e-4);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
}

TEST(Distribution, BucketsFillCorrectly)
{
    Distribution d(0.0, 10.0, 10);
    d.sample(0.5);
    d.sample(0.9);
    d.sample(9.5);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
}

TEST(Distribution, UnderflowAndOverflow)
{
    Distribution d(0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(10.0); // hi is exclusive
    d.sample(100.0);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Distribution, BucketLowerEdges)
{
    Distribution d(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(d.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(d.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(d.bucketLo(4), 8.0);
}

TEST(Distribution, QuantileOnUniformSamples)
{
    Distribution d(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(i + 0.5);
    EXPECT_NEAR(d.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(d.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(d.quantile(0.99), 99.0, 1.5);
}

TEST(Distribution, QuantileZeroReturnsFirstMass)
{
    Distribution d(0.0, 10.0, 10);
    d.sample(5.0);
    EXPECT_LE(d.quantile(0.0), 6.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d(0.0, 10.0, 10);
    d.sample(5.0);
    d.sample(-1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(Distribution, RenderMentionsOverflow)
{
    Distribution d(0.0, 1.0, 2);
    d.sample(5.0);
    std::string out = d.render();
    EXPECT_NE(out.find("overflow: 1"), std::string::npos);
}

TEST(Distribution, StddevOfConstantIsZero)
{
    Distribution d(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        d.sample(3.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(DistributionDeathTest, EmptyRangeRejected)
{
    EXPECT_DEATH(Distribution(5.0, 5.0, 10), "empty distribution range");
}

TEST(DistributionDeathTest, QuantileOfEmptyPanics)
{
    Distribution d(0.0, 1.0, 4);
    EXPECT_DEATH(d.quantile(0.5), "quantile of empty");
}

/**
 * @file
 * The sweep daemon binary: SweepSession as a service.
 *
 *   ./sweep_server [cache=DIR] [cache_budget=BYTES] [threads=N]
 *                  [socket=PATH] [max_bits=N]
 *
 * Speaks the newline-delimited JSON protocol of src/service/ --
 * one request line in, one response line out (see DESIGN.md "Sweep
 * service" and README "Sweep service quickstart").  By default it
 * serves stdin/stdout, which is what bpsim_client spawns as a
 * private engine; with socket=PATH it accepts any number of
 * concurrent clients on a local unix socket, coalescing their
 * overlapping sweeps into shared replays.
 *
 * The banner and diagnostics go to stderr: stdout carries protocol
 * bytes only.
 *
 *   cache=DIR          persistent .bpc result cache (shared safely
 *                      across processes; flock + atomic rename)
 *   cache_budget=N     on-disk LRU budget in bytes (0 = unbounded)
 *   threads=N          replay threads per sweep (0 = all cores)
 *   socket=PATH        serve a unix socket instead of stdin/stdout
 *   max_bits=N         largest tier a request may ask for
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/simd.hh"
#include "service/server.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    // Reject a typo'd BPSIM_SIMD override at startup: a daemon that
    // silently served every sweep with auto-detection would be much
    // harder to notice than one that refuses to start.
    cli::orFatal(simdEnvStatus());

    service::ServerOptions opts;
    opts.cacheDir = cfg.getString("cache", "");
    opts.cacheBudgetBytes = static_cast<std::uint64_t>(
        cli::requireInt(cfg, "cache_budget", 0));
    opts.threads =
        static_cast<unsigned>(cli::requireInt(cfg, "threads", 1));
    opts.limits.maxTotalBits = static_cast<unsigned>(cli::requireInt(
        cfg, "max_bits", opts.limits.maxTotalBits));
    const std::string socket = cfg.getString("socket", "");

    service::SweepServer server(opts);
    if (!socket.empty()) {
        std::fprintf(stderr,
                     "sweep_server: serving unix socket %s (cache=%s, "
                     "threads=%u)\n",
                     socket.c_str(),
                     opts.cacheDir.empty() ? "<memory>"
                                           : opts.cacheDir.c_str(),
                     opts.threads);
        cli::orFatal(server.serveSocket(socket));
    } else {
        std::fprintf(stderr,
                     "sweep_server: serving stdin/stdout (cache=%s, "
                     "threads=%u)\n",
                     opts.cacheDir.empty() ? "<memory>"
                                           : opts.cacheDir.c_str(),
                     opts.threads);
        cli::orFatal(server.servePipe(stdin, stdout));
    }

    const service::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "sweep_server: done (%llu requests, %llu errors, "
                 "%llu drains, %llu coalesced)\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.errors),
                 static_cast<unsigned long long>(stats.queue.drains),
                 static_cast<unsigned long long>(
                     stats.queue.batch.coalescedRequests));
    return 0;
}

/**
 * @file
 * Quickstart: generate a workload, build two predictors, compare them.
 *
 *   ./quickstart [profile=espresso] [branches=200000]
 *
 * Walks through the three core steps of the library: (1) synthesise a
 * benchmark-profile trace, (2) construct predictors from textual specs,
 * (3) replay the trace and read the misprediction rates.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/config.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/sweep_session.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "espresso");
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 200'000));

    // 1. Synthesise a trace: 'profile' picks one of the paper's fourteen
    //    benchmark models; the length is freely scalable.  The session
    //    interns the trace by content hash -- repeated interns of the
    //    same profile share one copy.
    std::printf("generating %s trace (%llu conditional branches)...\n",
                profile.c_str(),
                static_cast<unsigned long long>(branches));
    SweepSession session;
    TraceHandle handle =
        cli::orFatal(session.internProfile(profile, branches));
    std::printf("  %zu records, %zu conditional (trace %s)\n",
                handle.trace->size(),
                handle.trace->conditionalCount(),
                handle.hash.hex().c_str());

    // 2. Build predictors from specs (see predictorSpecHelp()).
    auto bimodal = makePredictor("addr:10");      // 1024 counters
    auto gshare = makePredictor("gshare:10:0");   // same budget
    auto pas = makePredictor("PAs:6:4:1024:4");   // 64x16 + 1K BHT

    // 3. Replay and report.  A TraceView carries its own cursor over
    //    the shared immutable trace.
    for (BranchPredictor *p :
         {bimodal.get(), gshare.get(), pas.get()}) {
        TraceView view(handle);
        PredictionStats stats = runPredictor(view, *p);
        std::printf("  %-24s misprediction %6.2f%%  (%llu / %llu)\n",
                    p->name().c_str(), stats.mispRate() * 100.0,
                    static_cast<unsigned long long>(stats.mispredicts()),
                    static_cast<unsigned long long>(stats.lookups()));
    }
    return 0;
}

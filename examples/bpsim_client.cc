/**
 * @file
 * Thin client for the sweep daemon.
 *
 *   ./bpsim_client server=./sweep_server <verb> [knobs]
 *   ./bpsim_client socket=/path/to.sock  <verb> [knobs]
 *
 * With server=BIN a private sweep_server child is spawned on a
 * stdin/stdout pipe (extra server knobs via server_args="k=v k=v");
 * with socket=PATH an already-running daemon is used.  Verbs:
 *
 *   ping                      liveness probe
 *   catalog                   registered schemes and workloads
 *   stats                     server/cache/coalescing counters
 *   shutdown                  ask the daemon to stop
 *   intern  profile=N|file=F  materialise a trace, print its key
 *   sweep   profile=..|hash=..|file=.. scheme=S [min_bits= max_bits=
 *           aliasing= path_bits= bht= assoc= bypass=1]
 *   point   <trace> scheme=S row_bits=R col_bits=C
 *
 * Common knobs: branches=N (profile length), id=STR (request id),
 * raw=1 (print raw response JSON instead of rendering), count=N
 * (repeat the request N times -- the second iteration demonstrates
 * the daemon's result cache).  Exits non-zero when the daemon
 * answers ok=false.
 */

#include <cstdio>

#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "stats/surface.hh"

using namespace bpsim;
using service::JsonValue;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bpsim_client (server=BIN | socket=PATH) <verb> "
        "[knobs]\n"
        "verbs: ping catalog stats shutdown intern sweep point\n"
        "see the file comment in examples/bpsim_client.cc\n");
    return 2;
}

/** Assemble the trace reference object from profile=/hash=/file=. */
JsonValue
traceRef(const Config &cfg)
{
    JsonValue::Object trace;
    const std::string profile = cfg.getString("profile", "");
    const std::string hash = cfg.getString("hash", "");
    const std::string file = cfg.getString("file", "");
    if (!profile.empty()) {
        trace.emplace("profile", JsonValue(profile));
        const auto branches = cli::requireInt(cfg, "branches", 0);
        if (branches > 0)
            trace.emplace("branches", JsonValue(branches));
    } else if (!hash.empty()) {
        trace.emplace("hash", JsonValue(hash));
    } else if (!file.empty()) {
        trace.emplace("file", JsonValue(file));
    } else {
        bpsim_fatal("name a trace: profile=, hash= or file=");
    }
    return JsonValue(std::move(trace));
}

/** Sweep options object from the CLI knobs the user actually set. */
JsonValue
sweepOptions(const Config &cfg)
{
    JsonValue::Object opts;
    if (cfg.has("min_bits"))
        opts.emplace("min_bits",
                     JsonValue(cli::requireInt(cfg, "min_bits", 4)));
    if (cfg.has("max_bits"))
        opts.emplace("max_bits",
                     JsonValue(cli::requireInt(cfg, "max_bits", 15)));
    if (cfg.has("aliasing"))
        opts.emplace("aliasing", JsonValue(cli::requireBool(
                                     cfg, "aliasing", true)));
    if (cfg.has("path_bits"))
        opts.emplace("path_bits",
                     JsonValue(cli::requireInt(cfg, "path_bits", 2)));
    if (cfg.has("bht"))
        opts.emplace("bht_entries",
                     JsonValue(cli::requireInt(cfg, "bht", 1024)));
    if (cfg.has("assoc"))
        opts.emplace("bht_assoc",
                     JsonValue(cli::requireInt(cfg, "assoc", 4)));
    return JsonValue(std::move(opts));
}

/** Build the request line for @p verb. */
std::string
buildRequest(const std::string &verb, const Config &cfg)
{
    JsonValue::Object req;
    req.emplace("op", JsonValue(verb));
    req.emplace("id", JsonValue(cfg.getString("id", verb)));
    if (verb == "intern") {
        req.emplace("trace", traceRef(cfg));
    } else if (verb == "sweep") {
        req.emplace("trace", traceRef(cfg));
        req.emplace("scheme",
                    JsonValue(cfg.getString("scheme", "GAs")));
        JsonValue opts = sweepOptions(cfg);
        if (!opts.object().empty())
            req.emplace("options", std::move(opts));
        if (cli::requireBool(cfg, "bypass", false))
            req.emplace("bypass_cache", JsonValue(true));
    } else if (verb == "point") {
        req.emplace("trace", traceRef(cfg));
        req.emplace("scheme",
                    JsonValue(cfg.getString("scheme", "GAs")));
        req.emplace("row_bits",
                    JsonValue(cli::requireInt(cfg, "row_bits", 0)));
        req.emplace("col_bits",
                    JsonValue(cli::requireInt(cfg, "col_bits", 0)));
        JsonValue opts = sweepOptions(cfg);
        if (!opts.object().empty())
            req.emplace("options", std::move(opts));
    } else if (verb != "ping" && verb != "catalog" &&
               verb != "stats" && verb != "shutdown") {
        bpsim_fatal("unknown verb '", verb, "'");
    }
    return JsonValue(std::move(req)).render();
}

/** Rebuild a Surface from its wire form for Surface::render(). */
Surface
surfaceFromJson(const JsonValue &tiers, const std::string &name)
{
    Surface out(name);
    if (!tiers.isArray())
        return out;
    for (const JsonValue &tier : tiers.array()) {
        const JsonValue *total = tier.find("total_bits");
        const JsonValue *points = tier.find("points");
        if (!total || !total->isInt() || !points ||
            !points->isArray())
            continue;
        for (const JsonValue &pt : points->array()) {
            const JsonValue *row = pt.find("row_bits");
            const JsonValue *col = pt.find("col_bits");
            const JsonValue *value = pt.find("value");
            if (!row || !col || !value || !value->isNumber())
                continue;
            out.add(static_cast<unsigned>(total->asInt()),
                    static_cast<unsigned>(row->asInt()),
                    static_cast<unsigned>(col->asInt()),
                    value->asDouble());
        }
    }
    return out;
}

/** Human rendering of one successful response. */
void
renderResponse(const JsonValue &response)
{
    const JsonValue *result = response.find("result");
    if (result && result->isObject()) {
        // A sweep: render the misprediction surface like
        // sweep_explorer does, plus provenance.
        const JsonValue *cache_hit = response.find("cache_hit");
        const JsonValue *disk_hit = response.find("disk_hit");
        const JsonValue *coalesced = response.find("coalesced");
        if (cache_hit && cache_hit->isBool() && cache_hit->asBool())
            std::printf("(served from the %s result cache)\n",
                        disk_hit && disk_hit->asBool() ? "on-disk"
                                                       : "in-memory");
        if (coalesced && coalesced->isBool() && coalesced->asBool())
            std::printf("(coalesced into a shared replay)\n");
        if (const JsonValue *misp = result->find("misprediction")) {
            Surface surface =
                surfaceFromJson(*misp, "misprediction");
            std::printf("%s", surface.render().c_str());
        }
        return;
    }
    // Everything else: the response object is its own best rendering.
    std::printf("%s\n", response.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    if (cfg.positional().empty())
        return usage();
    const std::string verb = cfg.positional().front();
    const std::string server = cfg.getString("server", "");
    const std::string socket = cfg.getString("socket", "");
    if (server.empty() == socket.empty())
        return usage(); // exactly one transport

    // Connect: spawn a private daemon or dial a shared one.
    service::ServerProcess child;
    service::LineChannel socketChannel;
    if (!server.empty()) {
        // cache=/threads= are forwarded so a private daemon can be
        // pointed at a shared persistent cache.
        std::vector<std::string> args;
        if (cfg.has("cache"))
            args.push_back("cache=" + cfg.getString("cache", ""));
        if (cfg.has("threads"))
            args.push_back(
                "threads=" +
                std::to_string(cli::requireInt(cfg, "threads", 1)));
        child = cli::orFatal(
            service::ServerProcess::spawn(server, args));
    } else {
        socketChannel =
            cli::orFatal(service::connectUnixSocket(socket));
    }
    service::LineChannel &channel =
        server.empty() ? socketChannel : child.channel();

    const std::string request = buildRequest(verb, cfg);
    const bool raw = cli::requireBool(cfg, "raw", false);
    const auto count = cli::requireInt(cfg, "count", 1);

    int exit_code = 0;
    for (std::int64_t i = 0; i < count; ++i) {
        std::string response_line =
            cli::orFatal(service::roundTrip(channel, request));
        if (raw)
            std::printf("%s\n", response_line.c_str());
        JsonValue response =
            cli::orFatal(service::parseJson(response_line));
        const JsonValue *ok = response.find("ok");
        if (!ok || !ok->isBool())
            bpsim_fatal("malformed response: ", response_line);
        if (!ok->asBool()) {
            const JsonValue *error = response.find("error");
            const JsonValue *message =
                error ? error->find("message") : nullptr;
            std::fprintf(stderr, "error: %s\n",
                         message && message->isString()
                             ? message->asString().c_str()
                             : response_line.c_str());
            exit_code = 1;
            continue;
        }
        if (!raw)
            renderResponse(response);
    }
    return exit_code;
}

/**
 * @file
 * Scheme shoot-out at a fixed hardware budget -- the question the paper
 * answers: given 2^n two-bit counters, which organisation wins, and how
 * does the answer change with program size?
 *
 *   ./compare_schemes [profile=real_gcc] [budget_bits=12]
 *                     [branches=1000000] [bht=1024] [threads=0]
 *
 * For each scheme the full row/column configuration space at the budget
 * is swept and the best split is reported, plus a McFarling tournament
 * of the two classic components as an extension data point.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/config.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/sweep_session.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "real_gcc");
    auto budget = static_cast<unsigned>(cli::requireInt(cfg, "budget_bits", 12));
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 1'000'000));
    auto bht = static_cast<std::size_t>(cli::requireInt(cfg, "bht", 1024));

    std::printf("profile %s, budget 2^%u = %llu counters\n",
                profile.c_str(), budget,
                1ULL << budget);

    SweepSession session;
    TraceHandle handle =
        cli::orFatal(session.internProfile(profile, branches));

    SweepOptions opts;
    opts.minTotalBits = budget;
    opts.maxTotalBits = budget;
    opts.trackAliasing = true;
    opts.bhtEntries = bht;
    opts.threads = static_cast<unsigned>(cli::requireInt(cfg, "threads", 0));

    TableFormatter table({"scheme", "best config", "misprediction",
                          "aliasing", "harmless share"});

    const SchemeKind kinds[] = {
        SchemeKind::AddressIndexed, SchemeKind::GAg, SchemeKind::GAs,
        SchemeKind::Gshare,         SchemeKind::Path,
        SchemeKind::PAsPerfect,     SchemeKind::PAsFinite,
    };
    for (SchemeKind kind : kinds) {
        SweepResult sweep =
            cli::orFatal(session.sweep(
                             SweepRequest{handle.hash, kind, opts}))
                .result;
        auto best = sweep.misprediction.bestInTier(budget);
        if (!best)
            continue;
        auto alias = sweep.aliasing.at(budget, best->rowBits);
        auto harmless = sweep.harmless.at(budget, best->rowBits);
        table.addRow({schemeKindName(kind),
                      TableFormatter::configLabel(best->rowBits,
                                                  best->colBits),
                      TableFormatter::percent(best->value),
                      TableFormatter::percent(alias.value_or(0.0)),
                      TableFormatter::percent(harmless.value_or(0.0))});
    }

    // Extension: combine bimodal with gshare at the same total counter
    // budget (half each) and let choice counters arbitrate.
    {
        char spec[128];
        std::snprintf(spec, sizeof(spec),
                      "tournament(addr:%u,gshare:%u:0):%u", budget - 1,
                      budget - 1, budget - 1);
        auto combined = makePredictor(spec);
        TraceView view(handle);
        PredictionStats stats = runPredictor(view, *combined);
        table.addSeparator();
        table.addRow({combined->name(), "-",
                      TableFormatter::percent(stats.mispRate()), "-",
                      "-"});
    }

    // Extension: the modern zoo at a loosely matched budget.  TAGE
    // spends the budget across tagged components plus a bimodal base;
    // the hashed perceptron across per-table weight rows.  Neither is
    // organised as rows x columns of two-bit counters, so only the
    // headline misprediction rate is comparable.
    {
        char tage_spec[64];
        std::snprintf(tage_spec, sizeof(tage_spec), "tage:%u:%u",
                      budget, budget > 2 ? budget - 2 : 1);
        char perc_spec[64];
        std::snprintf(perc_spec, sizeof(perc_spec), "perceptron:16:%u",
                      budget > 2 ? budget - 2 : 1);
        for (const char *spec : {static_cast<const char *>(tage_spec),
                                 static_cast<const char *>(perc_spec)}) {
            auto zoo = makePredictor(spec);
            TraceView view(handle);
            PredictionStats stats = runPredictor(view, *zoo);
            table.addRow({zoo->name(), "-",
                          TableFormatter::percent(stats.mispRate()), "-",
                          "-"});
        }
    }

    std::printf("%s", table.render().c_str());
    return 0;
}

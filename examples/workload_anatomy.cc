/**
 * @file
 * Workload anatomy: break a profile's misprediction rate down by the
 * behaviour class of the branch (loop, biased, pattern, correlated, ...)
 * under several predictors side by side.
 *
 *   ./workload_anatomy [profile=mpeg_play] [branches=1000000]
 *                      [specs=addr:12,gshare:12:0,PAs:8:4]
 *
 * This is the tool that explains *why* one scheme beats another on a
 * profile: which behaviour class carries the dynamic weight, and which
 * predictor recovers it.
 */

#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/cli.hh"
#include "common/config.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/sweep_session.hh"
#include "stats/table_formatter.hh"
#include "workload/executor.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

std::vector<std::string>
splitComma(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        auto comma = text.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "mpeg_play");
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 1'000'000));
    auto specs = splitComma(cfg.getString(
        "specs", "addr:12,GAs:6:6,gshare:12:0,PAs:8:4"));

    WorkloadParams params = profileParams(profile, branches);
    SyntheticProgram program = buildProgram(params);

    // Site address -> behaviour class.
    std::unordered_map<Addr, const char *> site_type;
    for (const auto &site : program.sites) {
        bool kern = program.functions[site.function].kernel;
        site_type[program.addressOf(site.slot, kern)] =
            site.predicate->typeName();
    }

    // The trace is materialised here (the executor was needed for the
    // site map anyway) and interned by content into a session, so the
    // per-spec replays below share one immutable copy.
    ProgramExecutor executor(program, params);
    MemoryTrace trace(params.name);
    trace.appendAll(executor);
    SweepSession session;
    TraceHandle handle = session.internTrace(std::move(trace));

    struct Cell
    {
        std::uint64_t executed = 0;
        std::uint64_t mispredicted = 0;
    };
    // type -> per-spec counts
    std::map<std::string, std::vector<Cell>> by_type;

    for (std::size_t s = 0; s < specs.size(); ++s) {
        auto predictor = makePredictor(specs[s]);
        TraceView view(handle);
        PredictionStats stats =
            runPredictor(view, *predictor, /*track_sites=*/true);
        for (const auto &kv : stats.sites()) {
            auto it = site_type.find(kv.first);
            const char *type =
                it == site_type.end() ? "?" : it->second;
            auto &cells = by_type[type];
            cells.resize(specs.size());
            cells[s].executed += kv.second.executed;
            cells[s].mispredicted += kv.second.mispredicted;
        }
        std::printf("%-24s overall %6.2f%%\n",
                    predictor->name().c_str(),
                    stats.mispRate() * 100.0);
    }

    std::vector<std::string> headers = {"class", "dyn share"};
    for (const auto &spec : specs)
        headers.push_back(spec);
    TableFormatter table(headers);

    std::uint64_t total = 0;
    for (const auto &kv : by_type)
        if (!kv.second.empty())
            total += kv.second[0].executed;

    for (const auto &kv : by_type) {
        std::vector<std::string> row = {kv.first};
        double share = total ?
            static_cast<double>(kv.second[0].executed) /
                static_cast<double>(total)
            : 0.0;
        row.push_back(TableFormatter::percent(share, 1));
        for (std::size_t s = 0; s < specs.size(); ++s) {
            const Cell &c = s < kv.second.size() ? kv.second[s]
                                                 : Cell{};
            double rate = c.executed ?
                static_cast<double>(c.mispredicted) /
                    static_cast<double>(c.executed)
                : 0.0;
            row.push_back(TableFormatter::percent(rate));
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

/**
 * @file
 * Branch classification and user/kernel decomposition for one profile.
 *
 *   ./classification_study [profile=mpeg_play] [branches=500000]
 *                          [spec=gshare:12:0]
 *
 * Two analyses from the paper's Section 2:
 *  1. the Chang-et-al taken-rate classification, showing how dynamic
 *     weight and misprediction distribute over bias bands ("a large
 *     proportion of the branches ... are very highly biased");
 *  2. a user-only vs kernel-only comparison for IBS-style profiles
 *     ("the operating system code branch behavior falls within the
 *     range covered by the IBS application programs").
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/config.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/sweep_session.hh"
#include "stats/branch_classes.hh"
#include "trace/trace_filter.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "mpeg_play");
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 500'000));
    std::string spec = cfg.getString("spec", "gshare:12:0");

    SweepSession session;
    TraceHandle handle =
        cli::orFatal(session.internProfile(profile, branches));

    // 1. Classification over the full stream.
    {
        auto predictor = makePredictor(spec);
        TraceView view(handle);
        PredictionStats stats =
            runPredictor(view, *predictor, /*track_sites=*/true);
        std::printf("%s on %s (overall %5.2f%%):\n\n%s\n",
                    predictor->name().c_str(), profile.c_str(),
                    stats.mispRate() * 100.0,
                    classifyBranches(stats).render().c_str());
    }

    // 2. User vs kernel decomposition.
    for (bool kernel_side : {false, true}) {
        TraceView view(handle);
        FilteredTrace part =
            kernel_side ? kernelOnly(view) : userOnly(view);
        auto predictor = makePredictor(spec);
        PredictionStats stats = runPredictor(part, *predictor, true);
        if (stats.lookups() == 0) {
            std::printf("%s: no %s-mode conditionals\n",
                        profile.c_str(),
                        kernel_side ? "kernel" : "user");
            continue;
        }
        std::printf("%s component: %llu conditionals, "
                    "misprediction %5.2f%%, %zu static branches\n",
                    kernel_side ? "kernel" : "user  ",
                    static_cast<unsigned long long>(stats.lookups()),
                    stats.mispRate() * 100.0, stats.sites().size());
    }
    return 0;
}

/**
 * @file
 * Sweep explorer: render paper-style misprediction / aliasing surfaces
 * for any scheme, profile and tier range from the command line.
 *
 *   ./sweep_explorer [profile=real_gcc] [scheme=GAs] [min_bits=4]
 *                    [max_bits=15] [branches=1000000] [metric=misp]
 *                    [bht=1024] [assoc=4] [csv=0] [threads=0]
 *                    [cache=DIR]
 *
 * scheme: addr | GAg | GAs | gshare | path | PAs | PAsBht |
 *         tage | perceptron
 * metric: misp | alias | harmless
 * threads: concurrent trace replays (0 = all hardware threads,
 *          1 = serial); the rendered surface is identical either way.
 */

#include <chrono>
#include <cstdio>

#include "common/thread_pool.hh"

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/sweep_session.hh"

using namespace bpsim;

namespace {

SchemeKind
schemeFromName(const std::string &name)
{
    if (name == "addr")
        return SchemeKind::AddressIndexed;
    if (name == "GAg")
        return SchemeKind::GAg;
    if (name == "GAs")
        return SchemeKind::GAs;
    if (name == "gshare")
        return SchemeKind::Gshare;
    if (name == "path")
        return SchemeKind::Path;
    if (name == "PAs")
        return SchemeKind::PAsPerfect;
    if (name == "PAsBht")
        return SchemeKind::PAsFinite;
    if (name == "tage")
        return SchemeKind::Tage;
    if (name == "perceptron")
        return SchemeKind::Perceptron;
    bpsim_fatal("unknown scheme '", name,
                "'; use addr, GAg, GAs, gshare, path, PAs, PAsBht, "
                "tage or perceptron");
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "real_gcc");
    SchemeKind kind = schemeFromName(cfg.getString("scheme", "GAs"));
    std::string metric = cfg.getString("metric", "misp");
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 1'000'000));

    SweepOptions opts;
    opts.minTotalBits =
        static_cast<unsigned>(cli::requireInt(cfg, "min_bits", 4));
    opts.maxTotalBits =
        static_cast<unsigned>(cli::requireInt(cfg, "max_bits", 15));
    opts.trackAliasing = metric != "misp";
    opts.bhtEntries = static_cast<std::size_t>(cli::requireInt(cfg, "bht", 1024));
    opts.bhtAssoc = static_cast<unsigned>(cli::requireInt(cfg, "assoc", 4));
    opts.threads = static_cast<unsigned>(cli::requireInt(cfg, "threads", 0));

    // cache=DIR points the session at a persistent .bpc result cache;
    // a repeated invocation with the same knobs is then served from
    // disk with an identical surface.
    SweepSession session(cfg.getString("cache", ""));
    TraceHandle handle =
        cli::orFatal(session.internProfile(profile, branches));
    auto sweep_start = std::chrono::steady_clock::now();
    SweepResponse resp = cli::orFatal(
        session.sweep(SweepRequest{handle.hash, kind, opts}));
    SweepResult &r = resp.result;
    double sweep_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    if (resp.cacheHit)
        std::printf("(served from the %s result cache)\n",
                    resp.diskHit ? "on-disk" : "in-memory");

    const Surface *surface = &r.misprediction;
    if (metric == "alias")
        surface = &r.aliasing;
    else if (metric == "harmless")
        surface = &r.harmless;
    else if (metric != "misp")
        bpsim_fatal("unknown metric '", metric,
                    "'; use misp, alias or harmless");

    std::printf("%s", surface->render().c_str());
    if (cli::requireBool(cfg, "csv", false))
        std::printf("%s", surface->renderCsv().c_str());
    if (kind == SchemeKind::PAsFinite)
        std::printf("BHT miss rate: %.2f%%\n", r.bhtMissRate * 100.0);

    // Best-in-tier summary.
    std::printf("\nbest per tier:\n");
    for (const auto &tier : surface->tiers()) {
        auto best = surface->bestInTier(tier.totalBits);
        if (best) {
            std::printf("  %6llu counters: 2^%u x 2^%u  %6.2f%%\n",
                        1ULL << tier.totalBits, best->rowBits,
                        best->colBits, best->value * 100.0);
        }
    }

    std::printf("\nsweep wall clock: %.2f s at threads=%u (hardware "
                "threads: %u); rerun with threads=1 for the serial "
                "baseline\n",
                sweep_seconds,
                ThreadPool::resolveThreads(opts.threads),
                ThreadPool::hardwareThreads());
    return 0;
}

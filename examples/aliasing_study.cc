/**
 * @file
 * Aliasing anatomy for one workload -- the paper's central measurement.
 *
 *   ./aliasing_study [profile=mpeg_play] [branches=1000000]
 *                    [threads=0]
 *
 * Prints, for a GAs predictor across table sizes and splits:
 *   - the aliasing (conflict) rate,
 *   - the share of conflicts that are "harmless" (all-ones loop
 *     pattern),
 *   - the misprediction rate,
 * and contrasts the address-indexed and history-heavy extremes, making
 * the trade the paper describes directly visible: history bits separate
 * subcases but merge branches.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/config.hh"
#include "sim/experiment.hh"
#include "sim/sweep_session.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    std::string profile = cfg.getString("profile", "mpeg_play");
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 1'000'000));

    SweepSession session;
    TraceHandle handle =
        cli::orFatal(session.internProfile(profile, branches));
    std::printf("profile %s: %zu conditional instances\n",
                profile.c_str(), handle.trace->conditionalCount());

    SweepOptions opts;
    opts.minTotalBits = 6;
    opts.maxTotalBits = 14;
    opts.trackAliasing = true;
    opts.threads = static_cast<unsigned>(cli::requireInt(cfg, "threads", 0));
    SweepResult gas =
        cli::orFatal(session.sweep(
                         SweepRequest{handle.hash, SchemeKind::GAs,
                                      opts}))
            .result;

    TableFormatter table({"counters", "split (rows x cols)",
                          "aliasing", "harmless share", "misprediction"});
    for (unsigned total = opts.minTotalBits; total <= opts.maxTotalBits;
         total += 2) {
        // Three representative splits: all address, balanced, all
        // history.
        const unsigned rows[3] = {0, total / 2, total};
        for (unsigned r : rows) {
            auto misp = gas.misprediction.at(total, r);
            auto alias = gas.aliasing.at(total, r);
            auto harmless = gas.harmless.at(total, r);
            if (!misp)
                continue;
            table.addRow(
                {TableFormatter::integer(1ULL << total),
                 TableFormatter::configLabel(r, total - r),
                 TableFormatter::percent(alias.value_or(0.0)),
                 TableFormatter::percent(harmless.value_or(0.0)),
                 TableFormatter::percent(*misp)});
        }
        table.addSeparator();
    }
    std::printf("%s", table.render().c_str());

    // Headline: where does the best split sit in each tier?
    std::printf("\nbest split per tier (history bits / total bits):\n");
    for (const auto &tier : gas.misprediction.tiers()) {
        auto best = gas.misprediction.bestInTier(tier.totalBits);
        if (!best)
            continue;
        std::printf("  %6llu counters -> 2^%u x 2^%u  (%5.2f%%)\n",
                    1ULL << tier.totalBits, best->rowBits,
                    best->colBits, best->value * 100.0);
    }
    return 0;
}

/**
 * @file
 * Trace utility: generate, inspect and characterise .bpt trace files.
 *
 *   ./trace_tool generate profile=<name> out=<file> [branches=N]
 *   ./trace_tool info <file.bpt>
 *   ./trace_tool characterize <file.bpt>      # Table 1/2-style stats
 *   ./trace_tool head <file.bpt> [count=20]   # dump leading records
 *
 * The characterisation output mirrors the paper's Tables 1 and 2 so a
 * user can run the same analysis over their own (converted) traces.
 */

#include <cinttypes>
#include <cstdio>

#include <algorithm>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "stats/table_formatter.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool generate profile=<name> out=<file> "
                 "[branches=N]\n"
                 "       trace_tool info <file.bpt>\n"
                 "       trace_tool characterize <file.bpt>\n"
                 "       trace_tool head <file.bpt> [count=20]\n"
                 "       trace_tool top <file.bpt> [count=20] "
                 "[spec=addr:12]\n");
    return 2;
}

int
doGenerate(const Config &cfg)
{
    std::string profile = cfg.getString("profile", "");
    std::string out = cfg.getString("out", "");
    if (profile.empty() || out.empty())
        return usage();
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 0));

    MemoryTrace trace = generateProfileTrace(profile, branches);
    std::uint64_t written = cli::orFatal(saveTrace(trace, out));
    std::printf("wrote %" PRIu64 " records (%zu conditional) to %s\n",
                written, trace.conditionalCount(), out.c_str());
    return 0;
}

int
doInfo(const std::string &path)
{
    TraceReader reader = cli::orFatal(TraceReader::open(path));
    std::printf("trace: %s\nrecords: %" PRIu64 "\n",
                reader.name().c_str(), reader.recordCount());
    return 0;
}

int
doCharacterize(const std::string &path)
{
    MemoryTrace trace = cli::orFatal(loadTrace(path));
    TraceCharacterization ch = TraceCharacterization::measure(trace);

    TableFormatter t1({"metric", "value"});
    t1.addRow({"dynamic instructions",
               TableFormatter::integer(ch.dynamicInstructions())});
    t1.addRow({"dynamic conditional branches",
               TableFormatter::integer(ch.dynamicConditionals())});
    t1.addRow({"conditional density",
               TableFormatter::percent(ch.conditionalDensity(), 1)});
    t1.addRow({"static conditional branches",
               TableFormatter::integer(ch.staticConditionals())});
    t1.addRow({"static branches covering 90%",
               TableFormatter::integer(ch.staticCovering(0.90))});
    t1.addRow({"kernel-mode conditionals",
               TableFormatter::integer(ch.kernelConditionals())});
    t1.addRow({"dynamic share from branches with bias >= 0.9",
               TableFormatter::percent(
                   ch.dynamicFractionBiasedAbove(0.9), 1)});
    std::printf("%s", t1.render().c_str());

    auto quart = ch.frequencyQuartiles();
    TableFormatter t2({"instance share", "static branches",
                       "share of statics"});
    const char *labels[4] = {"first 50%", "next 40%", "next 9%",
                             "remaining 1%"};
    for (int i = 0; i < 4; ++i) {
        double share = ch.staticConditionals() ?
            static_cast<double>(quart[i]) /
                static_cast<double>(ch.staticConditionals())
            : 0.0;
        t2.addRow({labels[i], TableFormatter::integer(quart[i]),
                   TableFormatter::percent(share, 1)});
    }
    std::printf("%s", t2.render().c_str());
    return 0;
}

int
doTop(const std::string &path, std::int64_t count,
      const std::string &spec)
{
    MemoryTrace trace = cli::orFatal(loadTrace(path));
    auto predictor = makePredictor(spec);
    PredictionStats stats =
        runPredictor(trace, *predictor, /*track_sites=*/true);

    std::vector<std::pair<Addr, BranchSiteStats>> sites(
        stats.sites().begin(), stats.sites().end());
    std::sort(sites.begin(), sites.end(),
              [](const auto &a, const auto &b) {
                  return a.second.executed > b.second.executed;
              });

    std::printf("top branches under %s (overall %5.2f%%):\n",
                predictor->name().c_str(), stats.mispRate() * 100.0);
    TableFormatter t({"rank", "pc", "instances", "share", "taken",
                      "mispredicted"});
    std::uint64_t total = stats.lookups();
    for (std::size_t i = 0;
         i < sites.size() && i < static_cast<std::size_t>(count); ++i) {
        char pc_buf[32];
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%08" PRIx64,
                      sites[i].first);
        t.addRow({std::to_string(i + 1), pc_buf,
                  TableFormatter::integer(sites[i].second.executed),
                  TableFormatter::percent(
                      static_cast<double>(sites[i].second.executed) /
                          static_cast<double>(total)),
                  TableFormatter::percent(sites[i].second.takenRate()),
                  TableFormatter::percent(sites[i].second.mispRate())});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
doHead(const std::string &path, std::int64_t count)
{
    TraceReader reader = cli::orFatal(TraceReader::open(path));
    BranchRecord rec;
    for (std::int64_t i = 0; i < count && reader.next(rec); ++i) {
        std::printf("%6lld  pc=0x%08" PRIx64 " -> 0x%08" PRIx64
                    "  %-6s %-9s gap=%u%s\n",
                    static_cast<long long>(i), rec.pc, rec.target,
                    branchTypeName(rec.type),
                    rec.isConditional()
                        ? (rec.taken ? "taken" : "not-taken")
                        : "",
                    rec.instGap, rec.kernel ? "  [kernel]" : "");
    }
    cli::orFatal(reader.status());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    const auto &pos = cfg.positional();
    if (pos.empty())
        return usage();
    const std::string &verb = pos[0];

    if (verb == "generate")
        return doGenerate(cfg);
    if (pos.size() < 2)
        return usage();
    if (verb == "info")
        return doInfo(pos[1]);
    if (verb == "characterize")
        return doCharacterize(pos[1]);
    if (verb == "head")
        return doHead(pos[1], cli::requireInt(cfg, "count", 20));
    if (verb == "top")
        return doTop(pos[1], cli::requireInt(cfg, "count", 20),
                     cfg.getString("spec", "addr:12"));
    return usage();
}

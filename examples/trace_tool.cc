/**
 * @file
 * Trace utility: generate, inspect and characterise .bpt trace files,
 * plus the content-hash and result-cache plumbing around them.
 *
 *   ./trace_tool generate profile=<name> out=<file> [branches=N]
 *   ./trace_tool info <file.bpt>
 *   ./trace_tool characterize <file.bpt>      # Table 1/2-style stats
 *   ./trace_tool head <file.bpt> [count=20]   # dump leading records
 *   ./trace_tool hash <file.bpt>              # content hash
 *   ./trace_tool hash profile=<name> [branches=N] [content=1]
 *   ./trace_tool cache info <file.bpc | dir>  # inspect cache entries
 *   ./trace_tool cache evict <dir> [trace=<hex>] [scheme=<name>]
 *                [all=1]
 *
 * The characterisation output mirrors the paper's Tables 1 and 2 so a
 * user can run the same analysis over their own (converted) traces.
 * `hash` prints the keys the engine uses: a file's content hash, or a
 * profile's generator key (the registry key that lets a synthetic
 * trace be interned without materialising it).  `cache` inspects and
 * prunes the persistent .bpc result caches that SweepSession writes;
 * corrupt entries are reported, never trusted.
 */

#include <cinttypes>
#include <cstdio>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "cache/result_cache.hh"
#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/sweep_session.hh"
#include "stats/table_formatter.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/synthetic.hh"
#include "workload/trace_key.hh"

using namespace bpsim;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool generate profile=<name> out=<file> "
                 "[branches=N]\n"
                 "       trace_tool info <file.bpt>\n"
                 "       trace_tool characterize <file.bpt>\n"
                 "       trace_tool head <file.bpt> [count=20]\n"
                 "       trace_tool top <file.bpt> [count=20] "
                 "[spec=addr:12]\n"
                 "       trace_tool hash <file.bpt>\n"
                 "       trace_tool hash profile=<name> [branches=N] "
                 "[content=1]\n"
                 "       trace_tool cache info <file.bpc | dir>\n"
                 "       trace_tool cache evict <dir> [trace=<hex>] "
                 "[scheme=<name>] [all=1]\n");
    return 2;
}

int
doGenerate(const Config &cfg)
{
    std::string profile = cfg.getString("profile", "");
    std::string out = cfg.getString("out", "");
    if (profile.empty() || out.empty())
        return usage();
    auto branches =
        static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 0));

    MemoryTrace trace = generateProfileTrace(profile, branches);
    std::uint64_t written = cli::orFatal(saveTrace(trace, out));
    std::printf("wrote %" PRIu64 " records (%zu conditional) to %s\n",
                written, trace.conditionalCount(), out.c_str());
    return 0;
}

int
doInfo(const std::string &path)
{
    TraceReader reader = cli::orFatal(TraceReader::open(path));
    std::printf("trace: %s\nrecords: %" PRIu64 "\n",
                reader.name().c_str(), reader.recordCount());
    return 0;
}

int
doCharacterize(const std::string &path)
{
    MemoryTrace trace = cli::orFatal(loadTrace(path));
    TraceCharacterization ch = TraceCharacterization::measure(trace);

    TableFormatter t1({"metric", "value"});
    t1.addRow({"dynamic instructions",
               TableFormatter::integer(ch.dynamicInstructions())});
    t1.addRow({"dynamic conditional branches",
               TableFormatter::integer(ch.dynamicConditionals())});
    t1.addRow({"conditional density",
               TableFormatter::percent(ch.conditionalDensity(), 1)});
    t1.addRow({"static conditional branches",
               TableFormatter::integer(ch.staticConditionals())});
    t1.addRow({"static branches covering 90%",
               TableFormatter::integer(ch.staticCovering(0.90))});
    t1.addRow({"kernel-mode conditionals",
               TableFormatter::integer(ch.kernelConditionals())});
    t1.addRow({"dynamic share from branches with bias >= 0.9",
               TableFormatter::percent(
                   ch.dynamicFractionBiasedAbove(0.9), 1)});
    std::printf("%s", t1.render().c_str());

    auto quart = ch.frequencyQuartiles();
    TableFormatter t2({"instance share", "static branches",
                       "share of statics"});
    const char *labels[4] = {"first 50%", "next 40%", "next 9%",
                             "remaining 1%"};
    for (int i = 0; i < 4; ++i) {
        double share = ch.staticConditionals() ?
            static_cast<double>(quart[i]) /
                static_cast<double>(ch.staticConditionals())
            : 0.0;
        t2.addRow({labels[i], TableFormatter::integer(quart[i]),
                   TableFormatter::percent(share, 1)});
    }
    std::printf("%s", t2.render().c_str());
    return 0;
}

int
doTop(const std::string &path, std::int64_t count,
      const std::string &spec)
{
    // Intern by content: the handle's hash is the same key the result
    // cache would use for sweeps over this trace.
    TraceRegistry registry;
    TraceHandle handle = cli::orFatal(registry.internFile(path));
    auto predictor = makePredictor(spec);
    TraceView view(handle);
    PredictionStats stats =
        runPredictor(view, *predictor, /*track_sites=*/true);

    std::vector<std::pair<Addr, BranchSiteStats>> sites(
        stats.sites().begin(), stats.sites().end());
    std::sort(sites.begin(), sites.end(),
              [](const auto &a, const auto &b) {
                  return a.second.executed > b.second.executed;
              });

    std::printf("top branches under %s (overall %5.2f%%):\n",
                predictor->name().c_str(), stats.mispRate() * 100.0);
    TableFormatter t({"rank", "pc", "instances", "share", "taken",
                      "mispredicted"});
    std::uint64_t total = stats.lookups();
    for (std::size_t i = 0;
         i < sites.size() && i < static_cast<std::size_t>(count); ++i) {
        char pc_buf[32];
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%08" PRIx64,
                      sites[i].first);
        t.addRow({std::to_string(i + 1), pc_buf,
                  TableFormatter::integer(sites[i].second.executed),
                  TableFormatter::percent(
                      static_cast<double>(sites[i].second.executed) /
                          static_cast<double>(total)),
                  TableFormatter::percent(sites[i].second.takenRate()),
                  TableFormatter::percent(sites[i].second.mispRate())});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
doHead(const std::string &path, std::int64_t count)
{
    TraceReader reader = cli::orFatal(TraceReader::open(path));
    BranchRecord rec;
    for (std::int64_t i = 0; i < count && reader.next(rec); ++i) {
        std::printf("%6lld  pc=0x%08" PRIx64 " -> 0x%08" PRIx64
                    "  %-6s %-9s gap=%u%s\n",
                    static_cast<long long>(i), rec.pc, rec.target,
                    branchTypeName(rec.type),
                    rec.isConditional()
                        ? (rec.taken ? "taken" : "not-taken")
                        : "",
                    rec.instGap, rec.kernel ? "  [kernel]" : "");
    }
    cli::orFatal(reader.status());
    return 0;
}

int
doHash(const Config &cfg, const std::vector<std::string> &pos)
{
    std::string profile = cfg.getString("profile", "");
    if (!profile.empty()) {
        auto branches = static_cast<std::uint64_t>(
            cli::requireInt(cfg, "branches", 0));
        TraceHash key =
            cli::orFatal(profileTraceKey(profile, branches));
        std::printf("profile:       %s\n", profile.c_str());
        std::printf("generator key: %s\n", key.hex().c_str());
        if (cli::requireBool(cfg, "content", false)) {
            MemoryTrace trace =
                generateProfileTrace(profile, branches);
            std::printf("content hash:  %s  (%zu records)\n",
                        traceHash(trace).hex().c_str(),
                        trace.size());
        }
        return 0;
    }
    if (pos.size() < 2)
        return usage();
    MemoryTrace trace = cli::orFatal(loadTrace(pos[1]));
    std::printf("trace:        %s\n", trace.name().c_str());
    std::printf("content hash: %s  (%zu records)\n",
                traceHash(trace).hex().c_str(), trace.size());
    return 0;
}

/** Read and validate one .bpc file (corrupt files are errors). */
Result<BpcImage>
readBpcFile(const std::string &path)
{
    auto stream = StdioFileStream::openRead(path);
    if (!stream.ok())
        return stream.error();
    return readBpc(*stream.value());
}

std::size_t
surfacePoints(const Surface &surface)
{
    std::size_t n = 0;
    for (const auto &tier : surface.tiers())
        n += tier.points.size();
    return n;
}

/** Sorted *.bpc paths under @p dir. */
std::vector<std::string>
listBpcFiles(const std::string &dir)
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".bpc")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

int
doCacheInfo(const std::string &path)
{
    if (!std::filesystem::is_directory(path)) {
        BpcImage image = cli::orFatal(readBpcFile(path));
        std::printf("file:           %s\n", path.c_str());
        std::printf("engine version: %u\n",
                    image.key.engineVersion);
        std::printf("trace hash:     %s\n",
                    image.key.trace.hex().c_str());
        std::printf("scheme:         %s\n",
                    image.key.scheme.c_str());
        std::printf("config key:     %s\n",
                    image.key.configKey.c_str());
        std::printf("misprediction:  %zu tiers, %zu points\n",
                    image.payload.misprediction.tiers().size(),
                    surfacePoints(image.payload.misprediction));
        std::printf("aliasing:       %zu tiers, %zu points\n",
                    image.payload.aliasing.tiers().size(),
                    surfacePoints(image.payload.aliasing));
        if (image.payload.bhtMissRate > 0)
            std::printf("BHT miss rate:  %.2f%%\n",
                        image.payload.bhtMissRate * 100.0);
        return 0;
    }

    TableFormatter table(
        {"file", "engine", "trace", "scheme", "config"});
    std::size_t corrupt = 0;
    const auto files = listBpcFiles(path);
    for (const std::string &file : files) {
        auto image = readBpcFile(file);
        std::string leaf =
            std::filesystem::path(file).filename().string();
        if (!image.ok()) {
            table.addRow({leaf, "-", "CORRUPT", "-", "-"});
            ++corrupt;
            continue;
        }
        table.addRow({leaf,
                      std::to_string(image.value().key.engineVersion),
                      image.value().key.trace.hex(),
                      image.value().key.scheme,
                      image.value().key.configKey});
    }
    std::printf("%s", table.render().c_str());
    std::printf("%zu entr%s, %zu corrupt (corrupt entries are "
                "recomputed, never served)\n",
                files.size(), files.size() == 1 ? "y" : "ies",
                corrupt);
    return 0;
}

int
doCacheEvict(const Config &cfg, const std::string &dir)
{
    if (!std::filesystem::is_directory(dir))
        bpsim_fatal("'", dir, "' is not a cache directory");
    const std::string trace_filter = cfg.getString("trace", "");
    const std::string scheme_filter = cfg.getString("scheme", "");
    const bool all = cli::requireBool(cfg, "all", false);
    if (trace_filter.empty() && scheme_filter.empty() && !all)
        bpsim_fatal("refusing to evict without a filter; pass "
                    "trace=<hex>, scheme=<name> or all=1");

    std::size_t removed = 0, kept = 0;
    for (const std::string &file : listBpcFiles(dir)) {
        auto image = readBpcFile(file);
        bool matches;
        if (!image.ok()) {
            // A corrupt entry has no trustworthy key; it only goes
            // with all=1.
            matches = all;
        } else {
            matches =
                (trace_filter.empty() ||
                 image.value().key.trace.hex() == trace_filter) &&
                (scheme_filter.empty() ||
                 image.value().key.scheme == scheme_filter);
        }
        if (matches && std::filesystem::remove(file))
            ++removed;
        else
            ++kept;
    }
    std::printf("evicted %zu cache entr%s (%zu kept)\n", removed,
                removed == 1 ? "y" : "ies", kept);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    const auto &pos = cfg.positional();
    if (pos.empty())
        return usage();
    const std::string &verb = pos[0];

    if (verb == "generate")
        return doGenerate(cfg);
    if (verb == "hash")
        return doHash(cfg, pos);
    if (verb == "cache") {
        if (pos.size() < 3)
            return usage();
        if (pos[1] == "info")
            return doCacheInfo(pos[2]);
        if (pos[1] == "evict")
            return doCacheEvict(cfg, pos[2]);
        return usage();
    }
    if (pos.size() < 2)
        return usage();
    if (verb == "info")
        return doInfo(pos[1]);
    if (verb == "characterize")
        return doCharacterize(pos[1]);
    if (verb == "head")
        return doHead(pos[1], cli::requireInt(cfg, "count", 20));
    if (verb == "top")
        return doTop(pos[1], cli::requireInt(cfg, "count", 20),
                     cfg.getString("spec", "addr:12"));
    return usage();
}

file(REMOVE_RECURSE
  "CMakeFiles/tr_full_results.dir/tr_full_results.cc.o"
  "CMakeFiles/tr_full_results.dir/tr_full_results.cc.o.d"
  "tr_full_results"
  "tr_full_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_full_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tr_full_results.
# This may be replaced when dependencies are built.

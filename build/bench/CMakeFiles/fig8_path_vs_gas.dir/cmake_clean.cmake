file(REMOVE_RECURSE
  "CMakeFiles/fig8_path_vs_gas.dir/fig8_path_vs_gas.cc.o"
  "CMakeFiles/fig8_path_vs_gas.dir/fig8_path_vs_gas.cc.o.d"
  "fig8_path_vs_gas"
  "fig8_path_vs_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_path_vs_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

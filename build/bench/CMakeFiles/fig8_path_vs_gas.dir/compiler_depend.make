# Empty compiler generated dependencies file for fig8_path_vs_gas.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_frequency.
# This may be replaced when dependencies are built.

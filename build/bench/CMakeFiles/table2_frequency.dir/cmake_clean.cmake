file(REMOVE_RECURSE
  "CMakeFiles/table2_frequency.dir/table2_frequency.cc.o"
  "CMakeFiles/table2_frequency.dir/table2_frequency.cc.o.d"
  "table2_frequency"
  "table2_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_tournament.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tournament.cc" "bench/CMakeFiles/ablation_tournament.dir/ablation_tournament.cc.o" "gcc" "bench/CMakeFiles/ablation_tournament.dir/ablation_tournament.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/bpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bpsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

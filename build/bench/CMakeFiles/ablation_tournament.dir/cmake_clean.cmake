file(REMOVE_RECURSE
  "CMakeFiles/ablation_tournament.dir/ablation_tournament.cc.o"
  "CMakeFiles/ablation_tournament.dir/ablation_tournament.cc.o.d"
  "ablation_tournament"
  "ablation_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

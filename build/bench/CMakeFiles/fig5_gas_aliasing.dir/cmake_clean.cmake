file(REMOVE_RECURSE
  "CMakeFiles/fig5_gas_aliasing.dir/fig5_gas_aliasing.cc.o"
  "CMakeFiles/fig5_gas_aliasing.dir/fig5_gas_aliasing.cc.o.d"
  "fig5_gas_aliasing"
  "fig5_gas_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gas_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

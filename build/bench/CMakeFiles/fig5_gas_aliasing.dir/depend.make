# Empty dependencies file for fig5_gas_aliasing.
# This may be replaced when dependencies are built.

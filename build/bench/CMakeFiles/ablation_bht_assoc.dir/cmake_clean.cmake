file(REMOVE_RECURSE
  "CMakeFiles/ablation_bht_assoc.dir/ablation_bht_assoc.cc.o"
  "CMakeFiles/ablation_bht_assoc.dir/ablation_bht_assoc.cc.o.d"
  "ablation_bht_assoc"
  "ablation_bht_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bht_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_bht_assoc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_gas_surface.dir/fig4_gas_surface.cc.o"
  "CMakeFiles/fig4_gas_surface.dir/fig4_gas_surface.cc.o.d"
  "fig4_gas_surface"
  "fig4_gas_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gas_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

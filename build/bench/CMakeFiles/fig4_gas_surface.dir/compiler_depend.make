# Empty compiler generated dependencies file for fig4_gas_surface.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_gshare_vs_gas.dir/fig7_gshare_vs_gas.cc.o"
  "CMakeFiles/fig7_gshare_vs_gas.dir/fig7_gshare_vs_gas.cc.o.d"
  "fig7_gshare_vs_gas"
  "fig7_gshare_vs_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gshare_vs_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_gshare_vs_gas.
# This may be replaced when dependencies are built.

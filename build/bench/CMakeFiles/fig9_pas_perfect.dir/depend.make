# Empty dependencies file for fig9_pas_perfect.
# This may be replaced when dependencies are built.

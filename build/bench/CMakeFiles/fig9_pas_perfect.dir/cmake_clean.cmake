file(REMOVE_RECURSE
  "CMakeFiles/fig9_pas_perfect.dir/fig9_pas_perfect.cc.o"
  "CMakeFiles/fig9_pas_perfect.dir/fig9_pas_perfect.cc.o.d"
  "fig9_pas_perfect"
  "fig9_pas_perfect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pas_perfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_bht_reset.
# This may be replaced when dependencies are built.

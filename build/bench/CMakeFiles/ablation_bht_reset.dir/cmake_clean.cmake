file(REMOVE_RECURSE
  "CMakeFiles/ablation_bht_reset.dir/ablation_bht_reset.cc.o"
  "CMakeFiles/ablation_bht_reset.dir/ablation_bht_reset.cc.o.d"
  "ablation_bht_reset"
  "ablation_bht_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bht_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

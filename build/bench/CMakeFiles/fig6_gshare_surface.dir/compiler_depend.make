# Empty compiler generated dependencies file for fig6_gshare_surface.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_gshare_surface.dir/fig6_gshare_surface.cc.o"
  "CMakeFiles/fig6_gshare_surface.dir/fig6_gshare_surface.cc.o.d"
  "fig6_gshare_surface"
  "fig6_gshare_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gshare_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table3_best_configs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_best_configs.dir/table3_best_configs.cc.o"
  "CMakeFiles/table3_best_configs.dir/table3_best_configs.cc.o.d"
  "table3_best_configs"
  "table3_best_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_best_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

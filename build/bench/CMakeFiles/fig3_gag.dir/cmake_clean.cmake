file(REMOVE_RECURSE
  "CMakeFiles/fig3_gag.dir/fig3_gag.cc.o"
  "CMakeFiles/fig3_gag.dir/fig3_gag.cc.o.d"
  "fig3_gag"
  "fig3_gag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_gag.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_characterization.dir/table1_characterization.cc.o"
  "CMakeFiles/table1_characterization.dir/table1_characterization.cc.o.d"
  "table1_characterization"
  "table1_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

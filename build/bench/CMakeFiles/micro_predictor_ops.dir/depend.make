# Empty dependencies file for micro_predictor_ops.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_predictor_ops.dir/micro_predictor_ops.cc.o"
  "CMakeFiles/micro_predictor_ops.dir/micro_predictor_ops.cc.o.d"
  "micro_predictor_ops"
  "micro_predictor_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predictor_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_dealiasing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_dealiasing.dir/ablation_dealiasing.cc.o"
  "CMakeFiles/ablation_dealiasing.dir/ablation_dealiasing.cc.o.d"
  "ablation_dealiasing"
  "ablation_dealiasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dealiasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/interference_decomposition.dir/interference_decomposition.cc.o"
  "CMakeFiles/interference_decomposition.dir/interference_decomposition.cc.o.d"
  "interference_decomposition"
  "interference_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for interference_decomposition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_pas_finite.dir/fig10_pas_finite.cc.o"
  "CMakeFiles/fig10_pas_finite.dir/fig10_pas_finite.cc.o.d"
  "fig10_pas_finite"
  "fig10_pas_finite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pas_finite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_pas_finite.
# This may be replaced when dependencies are built.

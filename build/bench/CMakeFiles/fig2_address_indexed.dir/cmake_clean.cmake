file(REMOVE_RECURSE
  "CMakeFiles/fig2_address_indexed.dir/fig2_address_indexed.cc.o"
  "CMakeFiles/fig2_address_indexed.dir/fig2_address_indexed.cc.o.d"
  "fig2_address_indexed"
  "fig2_address_indexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_address_indexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_address_indexed.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_text_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_text_trace.dir/test_text_trace.cc.o"
  "CMakeFiles/test_text_trace.dir/test_text_trace.cc.o.d"
  "test_text_trace"
  "test_text_trace.pdb"
  "test_text_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_surface.
# This may be replaced when dependencies are built.

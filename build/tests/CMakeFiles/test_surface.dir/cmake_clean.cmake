file(REMOVE_RECURSE
  "CMakeFiles/test_surface.dir/test_surface.cc.o"
  "CMakeFiles/test_surface.dir/test_surface.cc.o.d"
  "test_surface"
  "test_surface.pdb"
  "test_surface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_bht.
# This may be replaced when dependencies are built.

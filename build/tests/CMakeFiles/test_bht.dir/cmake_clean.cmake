file(REMOVE_RECURSE
  "CMakeFiles/test_bht.dir/test_bht.cc.o"
  "CMakeFiles/test_bht.dir/test_bht.cc.o.d"
  "test_bht"
  "test_bht.pdb"
  "test_bht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_predicate.dir/test_predicate.cc.o"
  "CMakeFiles/test_predicate.dir/test_predicate.cc.o.d"
  "test_predicate"
  "test_predicate.pdb"
  "test_predicate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_aliasing.
# This may be replaced when dependencies are built.

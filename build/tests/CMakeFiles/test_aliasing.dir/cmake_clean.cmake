file(REMOVE_RECURSE
  "CMakeFiles/test_aliasing.dir/test_aliasing.cc.o"
  "CMakeFiles/test_aliasing.dir/test_aliasing.cc.o.d"
  "test_aliasing"
  "test_aliasing.pdb"
  "test_aliasing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

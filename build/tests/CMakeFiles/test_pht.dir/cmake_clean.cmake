file(REMOVE_RECURSE
  "CMakeFiles/test_pht.dir/test_pht.cc.o"
  "CMakeFiles/test_pht.dir/test_pht.cc.o.d"
  "test_pht"
  "test_pht.pdb"
  "test_pht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_pht.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sat_counter.dir/test_sat_counter.cc.o"
  "CMakeFiles/test_sat_counter.dir/test_sat_counter.cc.o.d"
  "test_sat_counter"
  "test_sat_counter.pdb"
  "test_sat_counter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sat_counter.
# This may be replaced when dependencies are built.

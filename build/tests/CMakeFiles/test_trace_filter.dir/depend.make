# Empty dependencies file for test_trace_filter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_trace_filter.dir/test_trace_filter.cc.o"
  "CMakeFiles/test_trace_filter.dir/test_trace_filter.cc.o.d"
  "test_trace_filter"
  "test_trace_filter.pdb"
  "test_trace_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_static_tournament.dir/test_static_tournament.cc.o"
  "CMakeFiles/test_static_tournament.dir/test_static_tournament.cc.o.d"
  "test_static_tournament"
  "test_static_tournament.pdb"
  "test_static_tournament[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

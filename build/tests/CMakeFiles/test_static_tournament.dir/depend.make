# Empty dependencies file for test_static_tournament.
# This may be replaced when dependencies are built.

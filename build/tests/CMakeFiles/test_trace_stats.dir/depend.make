# Empty dependencies file for test_trace_stats.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_table_formatter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_table_formatter.dir/test_table_formatter.cc.o"
  "CMakeFiles/test_table_formatter.dir/test_table_formatter.cc.o.d"
  "test_table_formatter"
  "test_table_formatter.pdb"
  "test_table_formatter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_formatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_branch_classes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_branch_classes.dir/test_branch_classes.cc.o"
  "CMakeFiles/test_branch_classes.dir/test_branch_classes.cc.o.d"
  "test_branch_classes"
  "test_branch_classes.pdb"
  "test_branch_classes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_gskew.dir/test_gskew.cc.o"
  "CMakeFiles/test_gskew.dir/test_gskew.cc.o.d"
  "test_gskew"
  "test_gskew.pdb"
  "test_gskew[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

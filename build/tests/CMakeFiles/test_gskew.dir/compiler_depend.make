# Empty compiler generated dependencies file for test_gskew.
# This may be replaced when dependencies are built.

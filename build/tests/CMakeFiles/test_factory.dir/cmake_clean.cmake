file(REMOVE_RECURSE
  "CMakeFiles/test_factory.dir/test_factory.cc.o"
  "CMakeFiles/test_factory.dir/test_factory.cc.o.d"
  "test_factory"
  "test_factory.pdb"
  "test_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

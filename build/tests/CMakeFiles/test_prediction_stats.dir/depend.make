# Empty dependencies file for test_prediction_stats.
# This may be replaced when dependencies are built.

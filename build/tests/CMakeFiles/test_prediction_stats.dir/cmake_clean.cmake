file(REMOVE_RECURSE
  "CMakeFiles/test_prediction_stats.dir/test_prediction_stats.cc.o"
  "CMakeFiles/test_prediction_stats.dir/test_prediction_stats.cc.o.d"
  "test_prediction_stats"
  "test_prediction_stats.pdb"
  "test_prediction_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_bitutil.
# This may be replaced when dependencies are built.

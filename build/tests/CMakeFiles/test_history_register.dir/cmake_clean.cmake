file(REMOVE_RECURSE
  "CMakeFiles/test_history_register.dir/test_history_register.cc.o"
  "CMakeFiles/test_history_register.dir/test_history_register.cc.o.d"
  "test_history_register"
  "test_history_register.pdb"
  "test_history_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

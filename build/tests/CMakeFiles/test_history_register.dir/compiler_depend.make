# Empty compiler generated dependencies file for test_history_register.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_prepared_trace.
# This may be replaced when dependencies are built.

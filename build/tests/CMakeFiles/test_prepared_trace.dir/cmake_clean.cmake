file(REMOVE_RECURSE
  "CMakeFiles/test_prepared_trace.dir/test_prepared_trace.cc.o"
  "CMakeFiles/test_prepared_trace.dir/test_prepared_trace.cc.o.d"
  "test_prepared_trace"
  "test_prepared_trace.pdb"
  "test_prepared_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prepared_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_program_builder.dir/test_program_builder.cc.o"
  "CMakeFiles/test_program_builder.dir/test_program_builder.cc.o.d"
  "test_program_builder"
  "test_program_builder.pdb"
  "test_program_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_program_builder.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dealiased.dir/test_dealiased.cc.o"
  "CMakeFiles/test_dealiased.dir/test_dealiased.cc.o.d"
  "test_dealiased"
  "test_dealiased.pdb"
  "test_dealiased[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dealiased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

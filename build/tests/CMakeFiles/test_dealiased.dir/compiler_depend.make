# Empty compiler generated dependencies file for test_dealiased.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_row_selectors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_row_selectors.dir/test_row_selectors.cc.o"
  "CMakeFiles/test_row_selectors.dir/test_row_selectors.cc.o.d"
  "test_row_selectors"
  "test_row_selectors.pdb"
  "test_row_selectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_two_level.dir/test_two_level.cc.o"
  "CMakeFiles/test_two_level.dir/test_two_level.cc.o.d"
  "test_two_level"
  "test_two_level.pdb"
  "test_two_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

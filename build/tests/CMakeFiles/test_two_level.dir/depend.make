# Empty dependencies file for test_two_level.
# This may be replaced when dependencies are built.

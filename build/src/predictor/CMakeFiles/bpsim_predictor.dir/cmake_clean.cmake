file(REMOVE_RECURSE
  "CMakeFiles/bpsim_predictor.dir/bht.cc.o"
  "CMakeFiles/bpsim_predictor.dir/bht.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/dealiased.cc.o"
  "CMakeFiles/bpsim_predictor.dir/dealiased.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/factory.cc.o"
  "CMakeFiles/bpsim_predictor.dir/factory.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/gskew.cc.o"
  "CMakeFiles/bpsim_predictor.dir/gskew.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/pht.cc.o"
  "CMakeFiles/bpsim_predictor.dir/pht.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/row_selector.cc.o"
  "CMakeFiles/bpsim_predictor.dir/row_selector.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/static_pred.cc.o"
  "CMakeFiles/bpsim_predictor.dir/static_pred.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/tournament.cc.o"
  "CMakeFiles/bpsim_predictor.dir/tournament.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/two_level.cc.o"
  "CMakeFiles/bpsim_predictor.dir/two_level.cc.o.d"
  "libbpsim_predictor.a"
  "libbpsim_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bpsim_predictor.
# This may be replaced when dependencies are built.

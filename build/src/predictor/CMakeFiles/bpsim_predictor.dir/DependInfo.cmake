
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/bht.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bht.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bht.cc.o.d"
  "/root/repo/src/predictor/dealiased.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/dealiased.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/dealiased.cc.o.d"
  "/root/repo/src/predictor/factory.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/factory.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/factory.cc.o.d"
  "/root/repo/src/predictor/gskew.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gskew.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gskew.cc.o.d"
  "/root/repo/src/predictor/pht.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/pht.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/pht.cc.o.d"
  "/root/repo/src/predictor/row_selector.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/row_selector.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/row_selector.cc.o.d"
  "/root/repo/src/predictor/static_pred.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/static_pred.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/static_pred.cc.o.d"
  "/root/repo/src/predictor/tournament.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/tournament.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/tournament.cc.o.d"
  "/root/repo/src/predictor/two_level.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/two_level.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bpsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbpsim_predictor.a"
)

# Empty dependencies file for bpsim_workload.
# This may be replaced when dependencies are built.

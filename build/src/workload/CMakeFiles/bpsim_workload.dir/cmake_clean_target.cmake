file(REMOVE_RECURSE
  "libbpsim_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bpsim_workload.dir/builder.cc.o"
  "CMakeFiles/bpsim_workload.dir/builder.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/executor.cc.o"
  "CMakeFiles/bpsim_workload.dir/executor.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/predicate.cc.o"
  "CMakeFiles/bpsim_workload.dir/predicate.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/profiles.cc.o"
  "CMakeFiles/bpsim_workload.dir/profiles.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/program.cc.o"
  "CMakeFiles/bpsim_workload.dir/program.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/synthetic.cc.o"
  "CMakeFiles/bpsim_workload.dir/synthetic.cc.o.d"
  "libbpsim_workload.a"
  "libbpsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/bpsim_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/bpsim_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/predicate.cc" "src/workload/CMakeFiles/bpsim_workload.dir/predicate.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/predicate.cc.o.d"
  "/root/repo/src/workload/profiles.cc" "src/workload/CMakeFiles/bpsim_workload.dir/profiles.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/profiles.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/bpsim_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/program.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/bpsim_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bpsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbpsim_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bpsim_common.dir/config.cc.o"
  "CMakeFiles/bpsim_common.dir/config.cc.o.d"
  "CMakeFiles/bpsim_common.dir/logging.cc.o"
  "CMakeFiles/bpsim_common.dir/logging.cc.o.d"
  "CMakeFiles/bpsim_common.dir/random.cc.o"
  "CMakeFiles/bpsim_common.dir/random.cc.o.d"
  "libbpsim_common.a"
  "libbpsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

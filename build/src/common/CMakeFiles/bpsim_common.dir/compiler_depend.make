# Empty compiler generated dependencies file for bpsim_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/bpsim_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/bpsim_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/interference.cc" "src/sim/CMakeFiles/bpsim_sim.dir/interference.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/interference.cc.o.d"
  "/root/repo/src/sim/prepared_trace.cc" "src/sim/CMakeFiles/bpsim_sim.dir/prepared_trace.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/prepared_trace.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/sim/CMakeFiles/bpsim_sim.dir/sweep.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bpsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/bpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bpsim_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbpsim_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bpsim_sim.dir/engine.cc.o"
  "CMakeFiles/bpsim_sim.dir/engine.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/experiment.cc.o"
  "CMakeFiles/bpsim_sim.dir/experiment.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/interference.cc.o"
  "CMakeFiles/bpsim_sim.dir/interference.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/prepared_trace.cc.o"
  "CMakeFiles/bpsim_sim.dir/prepared_trace.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/sweep.cc.o"
  "CMakeFiles/bpsim_sim.dir/sweep.cc.o.d"
  "libbpsim_sim.a"
  "libbpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

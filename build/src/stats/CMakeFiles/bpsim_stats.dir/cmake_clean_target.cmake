file(REMOVE_RECURSE
  "libbpsim_stats.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bpsim_stats.dir/aliasing.cc.o"
  "CMakeFiles/bpsim_stats.dir/aliasing.cc.o.d"
  "CMakeFiles/bpsim_stats.dir/branch_classes.cc.o"
  "CMakeFiles/bpsim_stats.dir/branch_classes.cc.o.d"
  "CMakeFiles/bpsim_stats.dir/distribution.cc.o"
  "CMakeFiles/bpsim_stats.dir/distribution.cc.o.d"
  "CMakeFiles/bpsim_stats.dir/prediction_stats.cc.o"
  "CMakeFiles/bpsim_stats.dir/prediction_stats.cc.o.d"
  "CMakeFiles/bpsim_stats.dir/surface.cc.o"
  "CMakeFiles/bpsim_stats.dir/surface.cc.o.d"
  "CMakeFiles/bpsim_stats.dir/table_formatter.cc.o"
  "CMakeFiles/bpsim_stats.dir/table_formatter.cc.o.d"
  "libbpsim_stats.a"
  "libbpsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

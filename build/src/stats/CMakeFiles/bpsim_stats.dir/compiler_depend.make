# Empty compiler generated dependencies file for bpsim_stats.
# This may be replaced when dependencies are built.

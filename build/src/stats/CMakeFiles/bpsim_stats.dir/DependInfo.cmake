
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/aliasing.cc" "src/stats/CMakeFiles/bpsim_stats.dir/aliasing.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/aliasing.cc.o.d"
  "/root/repo/src/stats/branch_classes.cc" "src/stats/CMakeFiles/bpsim_stats.dir/branch_classes.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/branch_classes.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/stats/CMakeFiles/bpsim_stats.dir/distribution.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/distribution.cc.o.d"
  "/root/repo/src/stats/prediction_stats.cc" "src/stats/CMakeFiles/bpsim_stats.dir/prediction_stats.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/prediction_stats.cc.o.d"
  "/root/repo/src/stats/surface.cc" "src/stats/CMakeFiles/bpsim_stats.dir/surface.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/surface.cc.o.d"
  "/root/repo/src/stats/table_formatter.cc" "src/stats/CMakeFiles/bpsim_stats.dir/table_formatter.cc.o" "gcc" "src/stats/CMakeFiles/bpsim_stats.dir/table_formatter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbpsim_trace.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/memory_trace.cc" "src/trace/CMakeFiles/bpsim_trace.dir/memory_trace.cc.o" "gcc" "src/trace/CMakeFiles/bpsim_trace.dir/memory_trace.cc.o.d"
  "/root/repo/src/trace/text_trace.cc" "src/trace/CMakeFiles/bpsim_trace.dir/text_trace.cc.o" "gcc" "src/trace/CMakeFiles/bpsim_trace.dir/text_trace.cc.o.d"
  "/root/repo/src/trace/trace_filter.cc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_filter.cc.o" "gcc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_filter.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_stats.cc.o" "gcc" "src/trace/CMakeFiles/bpsim_trace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bpsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

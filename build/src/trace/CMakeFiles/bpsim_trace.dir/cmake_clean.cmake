file(REMOVE_RECURSE
  "CMakeFiles/bpsim_trace.dir/memory_trace.cc.o"
  "CMakeFiles/bpsim_trace.dir/memory_trace.cc.o.d"
  "CMakeFiles/bpsim_trace.dir/text_trace.cc.o"
  "CMakeFiles/bpsim_trace.dir/text_trace.cc.o.d"
  "CMakeFiles/bpsim_trace.dir/trace_filter.cc.o"
  "CMakeFiles/bpsim_trace.dir/trace_filter.cc.o.d"
  "CMakeFiles/bpsim_trace.dir/trace_io.cc.o"
  "CMakeFiles/bpsim_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/bpsim_trace.dir/trace_stats.cc.o"
  "CMakeFiles/bpsim_trace.dir/trace_stats.cc.o.d"
  "libbpsim_trace.a"
  "libbpsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bpsim_trace.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "profile=compress" "branches=20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_schemes "/root/repo/build/examples/compare_schemes" "profile=compress" "budget_bits=8" "branches=30000" "bht=128")
set_tests_properties(example_compare_schemes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aliasing_study "/root/repo/build/examples/aliasing_study" "profile=compress" "branches=30000")
set_tests_properties(example_aliasing_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_anatomy "/root/repo/build/examples/workload_anatomy" "profile=compress" "branches=30000" "specs=addr:8,gshare:8:0")
set_tests_properties(example_workload_anatomy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_classification_study "/root/repo/build/examples/classification_study" "profile=mpeg_play" "branches=30000" "spec=addr:10")
set_tests_properties(example_classification_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sweep_explorer "/root/repo/build/examples/sweep_explorer" "profile=compress" "scheme=gshare" "min_bits=4" "max_bits=8" "branches=20000" "metric=alias")
set_tests_properties(example_sweep_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool_pipeline "/root/repo/build/examples/trace_tool" "generate" "profile=compress" "out=trace_tool_smoke.bpt" "branches=10000")
set_tests_properties(example_trace_tool_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool_characterize "/root/repo/build/examples/trace_tool" "characterize" "trace_tool_smoke.bpt")
set_tests_properties(example_trace_tool_characterize PROPERTIES  DEPENDS "example_trace_tool_pipeline" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for sweep_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sweep_explorer.dir/sweep_explorer.cc.o"
  "CMakeFiles/sweep_explorer.dir/sweep_explorer.cc.o.d"
  "sweep_explorer"
  "sweep_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

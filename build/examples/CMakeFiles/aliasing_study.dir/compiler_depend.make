# Empty compiler generated dependencies file for aliasing_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aliasing_study.dir/aliasing_study.cc.o"
  "CMakeFiles/aliasing_study.dir/aliasing_study.cc.o.d"
  "aliasing_study"
  "aliasing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aliasing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

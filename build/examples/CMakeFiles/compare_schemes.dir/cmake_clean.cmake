file(REMOVE_RECURSE
  "CMakeFiles/compare_schemes.dir/compare_schemes.cc.o"
  "CMakeFiles/compare_schemes.dir/compare_schemes.cc.o.d"
  "compare_schemes"
  "compare_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for compare_schemes.
# This may be replaced when dependencies are built.

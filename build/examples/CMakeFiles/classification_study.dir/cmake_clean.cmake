file(REMOVE_RECURSE
  "CMakeFiles/classification_study.dir/classification_study.cc.o"
  "CMakeFiles/classification_study.dir/classification_study.cc.o.d"
  "classification_study"
  "classification_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for classification_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for trace_tool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_tool.dir/trace_tool.cc.o"
  "CMakeFiles/trace_tool.dir/trace_tool.cc.o.d"
  "trace_tool"
  "trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/workload_anatomy.dir/workload_anatomy.cc.o"
  "CMakeFiles/workload_anatomy.dir/workload_anatomy.cc.o.d"
  "workload_anatomy"
  "workload_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workload_anatomy.
# This may be replaced when dependencies are built.

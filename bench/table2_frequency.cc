/**
 * @file
 * Table 2 reproduction: the number of static conditional branches
 * constituting the first 50%, next 40%, next 9% and remaining 1% of
 * dynamic instances, for the three focus benchmarks, with the paper's
 * values in parentheses.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"
#include "trace/trace_stats.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 2: branch execution frequency for espresso, "
           "mpeg_play and real_gcc");

    TableFormatter table({"benchmark", "first 50%", "next 40%",
                          "next 9%", "remaining 1%"});

    for (const auto &paper_row : paperFrequencyRows()) {
        TraceHandle handle = internProfile(
            opts.session(), paper_row.name, opts.branches);
        TraceView view(handle);
        auto ch = TraceCharacterization::measure(view);
        auto quart = ch.frequencyQuartiles();
        double statics =
            static_cast<double>(ch.staticConditionals());

        std::vector<std::string> row = {paper_row.name};
        for (int i = 0; i < 4; ++i) {
            char cell[96];
            std::snprintf(cell, sizeof(cell), "%zu / %.1f%% (%zu)",
                          quart[i],
                          statics > 0 ?
                              100.0 * static_cast<double>(quart[i]) /
                                  statics : 0.0,
                          paper_row.quartiles[i]);
            row.push_back(cell);
            opts.gold("table2/" + paper_row.name + "/q" +
                          std::to_string(i),
                      static_cast<double>(
                          quart[static_cast<std::size_t>(i)]));
        }
        table.addRow(row);
    }

    std::printf("%s", table.render().c_str());
    std::printf("\ncells: measured count / share of statics "
                "(paper count)\n");
    if (opts.csv)
        std::printf("\n%s", table.renderCsv().c_str());
    return opts.goldenFinish();
}

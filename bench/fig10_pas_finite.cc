/**
 * @file
 * Figure 10 reproduction: PAs misprediction surfaces for mpeg_play with
 * realistic (finite, 4-way set associative) first-level tables of 128,
 * 1024 and 2048 entries, plus the penalty of each relative to an
 * unbounded first level -- the paper's headline that first-level
 * pollution raises misprediction "more or less uniformly".
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 10: PAs surfaces with finite first-level tables "
           "(mpeg_play, 4-way)");

    WallTimer timer;
    TraceHandle trace =
        internProfile(opts.session(), "mpeg_play", opts.branches);
    SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
    sweep.trackAliasing = false;

    SweepResult perfect =
        runSweep(opts.session(), trace, SchemeKind::PAsPerfect, sweep);

    for (std::size_t entries : {128u, 1024u, 2048u}) {
        SweepOptions finite = sweep;
        finite.bhtEntries = entries;
        finite.bhtAssoc = 4;
        SweepResult r = runSweep(opts.session(), trace,
                                 SchemeKind::PAsFinite, finite);
        std::printf("--- %zu-entry 4-way BHT (miss rate %.2f%%) ---\n",
                    entries, r.bhtMissRate * 100.0);
        emitSurface(r.misprediction, opts);
        std::string prefix =
            "fig10/mpeg_play/bht" + std::to_string(entries);
        opts.goldSurface(prefix, r.misprediction);
        opts.gold(prefix + "/miss_rate", r.bhtMissRate);

        // Penalty vs the infinite first level at the single-column
        // 2^15 configuration the paper quotes.
        auto fin = r.misprediction.at(15, 15);
        auto inf = perfect.misprediction.at(15, 15);
        if (fin && inf) {
            std::printf("penalty vs infinite first level at 2^15 x "
                        "2^0: %+0.2f%%\n\n",
                        (*fin - *inf) * 100.0);
        }
    }

    std::printf("Expected shape (paper): a 128-entry first level "
                "cripples every configuration almost uniformly (one is "
                "better off with address bits alone); 1024 entries "
                "recover most of the loss and 2048 nearly all of it.  "
                "Resources are better spent on the first level than on "
                "an already-adequate second level.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Aliasing re-study for the modern-predictor zoo: does the paper's
 * central finding -- that predictor tables are dominated by aliasing
 * long before correlation runs out -- survive tagging?
 *
 * For each focus benchmark and a few matched storage budgets, decompose
 * every shared misprediction of an untagged global-history scheme
 * (gshare, the paper's best two-level variant) and of TAGE into the
 * three-C partition: aliasing (destructive), cold (first-touch /
 * allocation) and capacity.  TAGE's tag check turns silent counter
 * sharing into explicit allocation misses, so its aliasing share
 * should collapse while cold/capacity grow -- the re-study's headline.
 */

#include "bench_util.hh"
#include "sim/interference.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("TAGE aliasing re-study: three-C decomposition vs gshare");

    // Loosely matched prediction-state budgets, small to large.  TAGE
    // spends rows on per-component entries and cols on the bimodal
    // base; gshare spends everything on one PHT.
    struct Budget
    {
        const char *label;
        unsigned tageEntryBits; ///< rows: per-component entries
        unsigned tageBaseBits;  ///< cols: base table
        unsigned gshareRowBits; ///< gshare history = table bits
    };
    const Budget budgets[] = {
        {"small", 4, 6, 8},
        {"medium", 6, 8, 10},
        {"large", 8, 10, 12},
    };

    for (const auto &name : focusProfileNames()) {
        TraceHandle handle =
            internProfile(opts.session(), name, opts.branches);
        auto trace = preparedTrace(opts.session(), handle);
        std::printf("--- %s ---\n", name.c_str());
        TableFormatter table({"budget", "scheme", "shared misp",
                              "aliasing", "cold", "capacity"});
        for (const Budget &b : budgets) {
            SweepOptions o;
            InterferenceResult tage = analyzeInterference(
                *trace, SchemeKind::Tage, b.tageEntryBits,
                b.tageBaseBits, o);
            InterferenceResult gshare = analyzeInterference(
                *trace, SchemeKind::Gshare, b.gshareRowBits, 0, o);

            table.addRow({b.label, "gshare",
                          TableFormatter::percent(
                              gshare.sharedMispRate()),
                          TableFormatter::percent(
                              gshare.aliasingRate()),
                          TableFormatter::percent(gshare.coldRate()),
                          TableFormatter::percent(
                              gshare.capacityRate())});
            table.addRow({b.label, "tage",
                          TableFormatter::percent(
                              tage.sharedMispRate()),
                          TableFormatter::percent(tage.aliasingRate()),
                          TableFormatter::percent(tage.coldRate()),
                          TableFormatter::percent(
                              tage.capacityRate())});

            const std::string prefix =
                std::string("fig_tage_aliasing/") + name + "/" +
                b.label;
            opts.gold(prefix + "/gshare/shared_misp",
                      gshare.sharedMispRate());
            opts.gold(prefix + "/gshare/aliasing",
                      gshare.aliasingRate());
            opts.gold(prefix + "/gshare/cold", gshare.coldRate());
            opts.gold(prefix + "/gshare/capacity",
                      gshare.capacityRate());
            opts.gold(prefix + "/tage/shared_misp",
                      tage.sharedMispRate());
            opts.gold(prefix + "/tage/aliasing", tage.aliasingRate());
            opts.gold(prefix + "/tage/cold", tage.coldRate());
            opts.gold(prefix + "/tage/capacity", tage.capacityRate());
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Reading: gshare's mispredictions are dominated by "
                "destructive aliasing exactly as the paper measured "
                "for its two-level family; TAGE's tag check converts "
                "nearly all of that interference into cold "
                "(allocation) and capacity misses.  The paper-era "
                "aliasing machinery would misclassify those allocation "
                "misses as interference -- the decomposition here "
                "keeps the three classes separate.\n");
    return opts.goldenFinish();
}

/**
 * @file
 * Figure 5 reproduction: aliasing-rate surfaces for GAs schemes on the
 * three focus benchmarks (same axes as Figure 4), plus the
 * harmless-aliasing share the paper discusses ("approximately a fifth of
 * the aliasing for the larger benchmarks was for the pattern with all
 * recorded branches taken").
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 5: aliasing rates for GAs schemes");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepResult r =
            runSweep(opts.session(), trace, SchemeKind::GAs,
                     opts.sweepOptions(paperSweepOptions()));
        emitSurface(r.aliasing, opts);
        opts.goldSurface("fig5/" + name + "/alias", r.aliasing);
        opts.goldSurface("fig5/" + name + "/harmless", r.harmless);

        // Harmless share at the row-heavy edge of a large tier, where
        // the all-ones loop pattern dominates.
        auto harmless = r.harmless.at(15, 14);
        auto harmless_mid = r.harmless.at(12, 6);
        std::printf("harmless (all-ones-pattern) share of conflicts: "
                    "%.1f%% at 2^14 x 2^1, %.1f%% at 2^6 x 2^6\n\n",
                    harmless.value_or(0.0) * 100.0,
                    harmless_mid.value_or(0.0) * 100.0);
    }

    std::printf("Expected shape (paper): aliasing grows as address "
                "bits are traded for history bits (history is worse at "
                "distinguishing branches); espresso sees little "
                "aliasing once a few address bits are used, while "
                "mpeg_play and real_gcc alias heavily even in moderate "
                "tables.  For the large programs roughly a fifth of "
                "row-heavy aliasing is the harmless all-ones pattern.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

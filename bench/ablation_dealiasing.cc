/**
 * @file
 * Extension bench: the dealiased designs the paper's analysis motivated
 * (agree, bi-mode) against gshare and address-indexed prediction at
 * small-to-moderate budgets, across the three focus benchmarks.
 *
 * The paper's closing claim is that "controlling aliasing will be the
 * key to improving prediction accuracy and taking advantage of
 * inter-branch correlations in global schemes"; this bench checks that
 * the successor designs indeed recover the correlation benefit that
 * destructive aliasing erased at these sizes.
 */

#include "bench_util.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "stats/table_formatter.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Extension: dealiased successors (agree, bi-mode) vs "
           "gshare and address-indexed tables");

    for (unsigned bits : {10u, 12u}) {
        std::printf("--- ~2^%u counters ---\n", bits);
        TableFormatter table({"benchmark", "addr", "gshare", "agree",
                              "bimode", "gskew"});
        char addr_spec[32], gshare_spec[32], agree_spec[32],
            bimode_spec[32], gskew_spec[32];
        std::snprintf(addr_spec, sizeof(addr_spec), "addr:%u", bits);
        std::snprintf(gshare_spec, sizeof(gshare_spec), "gshare:%u:0",
                      bits);
        std::snprintf(agree_spec, sizeof(agree_spec), "agree:%u", bits);
        // bi-mode: two direction tables of half size plus choosers.
        std::snprintf(bimode_spec, sizeof(bimode_spec),
                      "bimode:%u:%u", bits - 1, bits - 1);
        // gskew: three banks summing to about the same budget.
        std::snprintf(gskew_spec, sizeof(gskew_spec), "gskew:%u:%u",
                      bits - 2, bits);

        for (const auto &name : focusProfileNames()) {
            std::uint64_t n =
                opts.branches ? opts.branches : 1'500'000;
            TraceHandle handle =
                internProfile(opts.session(), name, n);
            auto run = [&](const char *spec) {
                auto p = makePredictor(spec);
                TraceView view(handle);
                return TableFormatter::percent(
                    runPredictor(view, *p).mispRate());
            };
            table.addRow({name, run(addr_spec), run(gshare_spec),
                          run(agree_spec), run(bimode_spec),
                          run(gskew_spec)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Reading: on the large programs, plain gshare loses to "
                "the address-indexed table at these sizes (the paper's "
                "finding); agree and bi-mode convert the destructive "
                "interference into neutral interference and recover "
                "the global-history advantage.\n");
    return 0;
}

/**
 * @file
 * Misprediction surfaces for the hashed perceptron, on the paper's
 * axes: total prediction state against the history/entry split.  Rows
 * spend bits on global history length (the perceptron's analogue of
 * the paper's history axis) and columns on per-table entries, so the
 * surface is directly comparable to the two-level figures: it answers
 * how far the correlation-vs-aliasing trade-off moves when counters
 * are replaced by summed weights.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Perceptron misprediction surfaces (zoo companion to "
           "Figures 4 and 6)");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepResult r =
            runSweep(opts.session(), trace, SchemeKind::Perceptron,
                     opts.sweepOptions(paperSweepOptions()));
        emitSurface(r.misprediction, opts);
        opts.goldSurface("fig_perceptron/" + name + "/misp",
                         r.misprediction);
    }

    std::printf("Reading: unlike the two-level schemes, the perceptron "
                "degrades gracefully along the history axis -- one "
                "aliased weight perturbs a sum instead of flipping a "
                "counter -- so the row-heavy edge of each tier stays "
                "far flatter than the GAs/gshare surfaces at the same "
                "budget.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Figure 4 reproduction: the full GAs misprediction surfaces for
 * espresso, mpeg_play and real_gcc.  Each line is a constant-budget tier
 * (16 rear .. 32768 front); within a tier the cells run from the
 * address-indexed split (left, 0 history bits) to the GAg split (right,
 * all history bits).  The best-in-tier configuration -- the paper's
 * blackened bar -- is starred.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 4: misprediction surfaces for GAs schemes");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
        sweep.trackAliasing = false;
        SweepResult r =
            runSweep(opts.session(), trace, SchemeKind::GAs, sweep);
        emitSurface(r.misprediction, opts);
        opts.goldSurface("fig4/" + name, r.misprediction);
    }

    std::printf("Expected shape (paper): espresso's surface rewards "
                "history bits even in small tables; mpeg_play and "
                "real_gcc are best at the address-indexed edge for "
                "small/moderate tables because history bits merge "
                "distinct branches, and only large tables profit from "
                "subcasing.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Table 3 reproduction: for each focus benchmark and each scheme (GAs,
 * gshare, PAs with infinite/2k/1k/128-entry first levels), the best
 * configuration and its misprediction rate at 512, 4096 and 32768
 * counters, with first-level miss rates, printed beside the paper's
 * values.
 */

#include <array>
#include <map>

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace {

/** Paper Table 3 values: scheme -> {rate@512, rate@4096, rate@32768}.
 *  espresso's PAs(inf)@512 appears as "14.61%" in scans of the paper;
 *  we read it as 4.61% (it must lower-bound the finite-BHT 4.62% and
 *  4.83% rows).  real_gcc's PAs(inf)@32768 appears as "8.15%",
 *  read as 6.15% by the same monotonicity argument. */
using Rates = std::array<double, 3>;
const std::map<std::string, std::map<std::string, Rates>> paperRates =
    {
        {"espresso",
         {{"GAs", {4.79, 3.99, 3.52}},
          {"gshare", {4.83, 3.82, 3.33}},
          {"PAs(inf)", {4.61, 4.34, 4.06}},
          {"PAs(1k)", {4.62, 4.35, 4.08}},
          {"PAs(128)", {4.83, 4.57, 4.28}}}},
        {"mpeg_play",
         {{"GAs", {10.61, 7.23, 4.95}},
          {"gshare", {10.61, 6.90, 4.58}},
          {"PAs(inf)", {5.41, 4.84, 4.22}},
          {"PAs(2k)", {5.85, 5.27, 4.67}},
          {"PAs(1k)", {6.50, 5.92, 5.34}},
          {"PAs(128)", {11.53, 10.93, 10.53}}}},
        {"real_gcc",
         {{"GAs", {14.45, 9.59, 6.82}},
          {"gshare", {14.45, 9.52, 6.76}},
          {"PAs(inf)", {7.05, 6.50, 6.15}},
          {"PAs(2k)", {8.05, 7.51, 7.17}},
          {"PAs(1k)", {9.09, 8.55, 8.23}},
          {"PAs(128)", {17.88, 16.76, 16.20}}}},
};

std::string
paperCell(const std::string &bench, const std::string &scheme, int i)
{
    auto b = paperRates.find(bench);
    if (b == paperRates.end())
        return "-";
    auto s = b->second.find(scheme);
    if (s == b->second.end())
        return "-";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f%%", s->second[i]);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 3: best configurations for 512 / 4096 / 32768 "
           "counters");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        Table3Options t3;
        t3.budgetBits = {9, 12, 15};
        t3.bhtSizes = {2048, 1024, 128};
        t3.threads = opts.threads;
        auto rows = bestConfigs(opts.session(), trace, t3);

        std::printf("--- %s ---\n", name.c_str());
        TableFormatter table({"predictor", "1st-level miss",
                              "512 counters (paper)",
                              "4096 counters (paper)",
                              "32768 counters (paper)"});
        for (const auto &row : rows) {
            std::vector<std::string> cells = {row.scheme};
            cells.push_back(row.bhtMissRate < 0 ?
                                "-" :
                                TableFormatter::percent(
                                    row.bhtMissRate));
            for (int i = 0; i < 3; ++i) {
                if (!row.best[static_cast<std::size_t>(i)]) {
                    cells.push_back("-");
                    continue;
                }
                const auto &best =
                    *row.best[static_cast<std::size_t>(i)];
                char buf[96];
                std::snprintf(
                    buf, sizeof(buf), "%s (%s, paper %s)",
                    TableFormatter::configLabel(best.rowBits,
                                                best.colBits).c_str(),
                    TableFormatter::percent(best.mispRate).c_str(),
                    paperCell(name, row.scheme, i).c_str());
                cells.push_back(buf);
            }
            table.addRow(cells);

            std::string prefix = "table3/" + name + "/" + row.scheme;
            if (row.bhtMissRate >= 0)
                opts.gold(prefix + "/bht_miss", row.bhtMissRate);
            for (std::size_t i = 0; i < t3.budgetBits.size(); ++i) {
                if (!row.best[i])
                    continue;
                std::string at = prefix + "/b" +
                    std::to_string(t3.budgetBits[i]);
                opts.gold(at + "/misp", row.best[i]->mispRate);
                opts.gold(at + "/row_bits",
                          static_cast<double>(row.best[i]->rowBits));
                opts.gold(at + "/col_bits",
                          static_cast<double>(row.best[i]->colBits));
            }
        }
        std::printf("%s\n", table.render().c_str());
        if (opts.csv)
            std::printf("%s\n", table.renderCsv().c_str());
    }

    std::printf("Expected shape (paper): PAs beats the global schemes "
                "on the large programs, most clearly at small tables; "
                "global schemes need more address bits on large "
                "programs; PAs needs adequate first-level capacity "
                "(the 128-entry rows collapse); espresso converges for "
                "all schemes with gshare/GAs slightly ahead at large "
                "sizes.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

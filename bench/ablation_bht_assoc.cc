/**
 * @file
 * Ablation: BHT associativity.
 *
 * Section 5 of the paper notes first-level conflict rates "can be
 * reduced by using some degree of associativity"; the evaluated design
 * is 4-way.  This bench sweeps associativity at fixed capacity to show
 * the miss-rate and misprediction effect of that choice.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Ablation: BHT associativity at 1024 entries "
           "(PAs 2^10 x 2^2)");

    TableFormatter table({"benchmark", "ways", "BHT miss rate",
                          "misprediction"});

    for (const std::string name : {"mpeg_play", "real_gcc"}) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        for (unsigned assoc : {1u, 2u, 4u, 8u}) {
            SweepOptions o = opts.sweepOptions({});
            o.minTotalBits = 12;
            o.maxTotalBits = 12;
            o.trackAliasing = false;
            o.bhtEntries = 1024;
            o.bhtAssoc = assoc;
            SweepResult r = runSweep(opts.session(), trace,
                                     SchemeKind::PAsFinite, o);
            auto pt = r.misprediction.at(12, 10);
            table.addRow({name, std::to_string(assoc),
                          TableFormatter::percent(r.bhtMissRate),
                          pt ? TableFormatter::percent(*pt) : "-"});
        }
        table.addSeparator();
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nReading: conflict misses fall steeply from direct "
                "mapped to 2- and 4-way; beyond 4-way the capacity "
                "misses that remain are insensitive to associativity, "
                "which is why the paper (and Yeh & Patt before it) "
                "settled on 4-way.\n");
    return 0;
}

/**
 * @file
 * Table 1 reproduction: characterisation of all fourteen benchmark
 * profiles -- dynamic instructions, conditional branch density, static
 * conditional branches, and the number of static branches covering 90%
 * of dynamic instances -- measured on the synthetic traces and printed
 * beside the paper's values.
 *
 * Dynamic counts are scaled (the paper's traces run 42M-1.4B
 * instructions; the profiles default to roughly two million conditional
 * branches), so the comparable columns are the static ones and the
 * density.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"
#include "trace/trace_stats.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Table 1: characterisation of the SPECint92 and IBS-Ultrix "
           "benchmark profiles");

    TableFormatter table({"benchmark", "dyn. instrs (scaled)",
                          "cond. branches (% of instrs)",
                          "static cond. (paper)",
                          "covering 90% (paper)"});

    for (const auto &name : profileNames()) {
        TraceHandle handle =
            internProfile(opts.session(), name, opts.branches);
        TraceView view(handle);
        auto ch = TraceCharacterization::measure(view);
        const auto &paper = paperData(name);

        char density[64];
        std::snprintf(density, sizeof(density), "%s (%.1f%%)",
                      TableFormatter::integer(
                          ch.dynamicConditionals()).c_str(),
                      ch.conditionalDensity() * 100.0);
        char statics[64];
        std::snprintf(statics, sizeof(statics), "%zu (%zu)",
                      ch.staticConditionals(),
                      paper.staticConditionals);
        char covering[64];
        std::snprintf(covering, sizeof(covering), "%zu (%zu)",
                      ch.staticCovering(0.90), paper.staticCovering90);

        table.addRow({name,
                      TableFormatter::integer(ch.dynamicInstructions()),
                      density, statics, covering});

        opts.gold("table1/" + name + "/dyn_instrs",
                  static_cast<double>(ch.dynamicInstructions()));
        opts.gold("table1/" + name + "/cond_density",
                  ch.conditionalDensity());
        opts.gold("table1/" + name + "/static_cond",
                  static_cast<double>(ch.staticConditionals()));
        opts.gold("table1/" + name + "/covering90",
                  static_cast<double>(ch.staticCovering(0.90)));
    }

    std::printf("%s", table.render().c_str());
    if (opts.csv)
        std::printf("\n%s", table.renderCsv().c_str());
    return opts.goldenFinish();
}

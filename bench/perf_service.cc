/**
 * @file
 * Service coalescing benchmark: what the sweep daemon's BatchQueue
 * buys when M clients ask for overlapping sweeps at once.
 *
 *   serial     M requests served one after another by a plain
 *              SweepSession (every request a full trace replay; the
 *              no-daemon baseline)
 *   service    the same M requests submitted concurrently through
 *              SweepServer::submitSweep -- submitters that pile up
 *              behind a drain are combined, and requests sharing a
 *              first-level stream are answered by ONE envelope
 *              replay sliced per request
 *
 * All requests run with bypassCache, so neither mode ever answers
 * from the result cache: the comparison isolates the coalescing
 * machinery itself.  Every service response is verified bit-identical
 * to its serial counterpart (a coalesced slice that differed would
 * make the whole design unsound), so the timing comparison is fair.
 *
 * Speedups are *reported*, never asserted -- the committed
 * BENCH_service.json seeds the perf trajectory; the `perf` ctest
 * label just smokes the binary (see EXPERIMENTS.md).
 *
 * Knobs: branches=N (default 400000), clients=M (default 8),
 * reps=N (best-of, default 2), profile=NAME, json=FILE.
 */

#include <algorithm>
#include <barrier>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "service/server.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace {

/** The lattice client @p i asks for: overlapping, not identical,
 *  tier ranges -- the realistic "several explorers on one trace"
 *  shape the daemon exists for. */
SweepRequest
clientRequest(const TraceHash &trace, unsigned i)
{
    SweepOptions opts;
    opts.minTotalBits = 4 + i % 3;
    opts.maxTotalBits = 12;
    opts.trackAliasing = true;
    opts.threads = 1;
    SweepRequest request{trace, SchemeKind::Gshare, opts};
    request.bypassCache = true; // measure replays, not cache hits
    return request;
}

void
checkIdentical(const SweepResult &expect, const SweepResult &got,
               unsigned client)
{
    const auto &a = expect.misprediction.tiers();
    const auto &b = got.misprediction.tiers();
    bpsim_assert(a.size() == b.size(), "tier count drift, client ",
                 client);
    for (std::size_t t = 0; t < a.size(); ++t)
        for (std::size_t p = 0; p < a[t].points.size(); ++p)
            bpsim_assert(
                a[t].points[p].value == b[t].points[p].value,
                "coalesced slice diverges from the serial sweep "
                "(client ", client, ", tier 2^", a[t].totalBits,
                ") -- coalescing is not bit-identical");
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    const auto branches = static_cast<std::uint64_t>(
        cli::requireInt(cfg, "branches", 400000));
    const auto clients = static_cast<unsigned>(
        cli::requireInt(cfg, "clients", 8));
    const auto reps =
        static_cast<unsigned>(cli::requireInt(cfg, "reps", 2));
    const std::string profile =
        cfg.getString("profile", "mpeg_play");
    const std::string json_path =
        cfg.getString("json", "BENCH_service.json");

    banner("Sweep service: serial clients vs coalescing BatchQueue");
    std::printf("profile %s, %llu conditional branches, %u clients, "
                "gshare tiers 2^4..2^12, best of %u rep%s\n\n",
                profile.c_str(),
                static_cast<unsigned long long>(branches), clients,
                reps, reps == 1 ? "" : "s");

    // Serial baseline + reference results.
    SweepSession serial_session;
    TraceHandle handle =
        internProfile(serial_session, profile, branches);
    std::vector<std::optional<SweepResult>> reference(clients);
    double serial_s = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        for (unsigned i = 0; i < clients; ++i) {
            SweepResult r =
                cli::orFatal(serial_session.sweep(
                                 clientRequest(handle.hash, i)))
                    .result;
            if (rep == 0)
                reference[i].emplace(std::move(r));
        }
        const double s = timer.seconds();
        serial_s = rep == 0 ? s : std::min(serial_s, s);
    }

    // Service mode: the same requests, submitted concurrently.
    service::ServerOptions opts;
    opts.threads = 1; // coalescing, not thread-parallel replay
    service::SweepServer server(opts);
    cli::orFatal(
        server.session().internProfile(profile, branches));

    double service_s = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        std::barrier gate(clients);
        std::vector<std::thread> threads;
        WallTimer timer;
        for (unsigned i = 0; i < clients; ++i) {
            threads.emplace_back([&, i] {
                gate.arrive_and_wait();
                SweepResult r =
                    cli::orFatal(server.submitSweep(
                                     clientRequest(handle.hash, i)))
                        .result;
                checkIdentical(*reference[i], r, i);
            });
        }
        for (std::thread &t : threads)
            t.join();
        const double s = timer.seconds();
        service_s = rep == 0 ? s : std::min(service_s, s);
    }

    const service::ServerStats stats = server.stats();
    const double speedup = serial_s / service_s;
    std::printf("serial   %9.3f s (%u full replays)\n", serial_s,
                clients);
    std::printf("service  %9.3f s (%5.2fx; %llu envelope replays, "
                "%llu fused groups, %llu of %llu requests "
                "coalesced)\n",
                service_s, speedup,
                static_cast<unsigned long long>(
                    stats.queue.batch.envelopeSweeps),
                static_cast<unsigned long long>(
                    stats.queue.batch.fusedGroupsFormed),
                static_cast<unsigned long long>(
                    stats.queue.batch.coalescedRequests),
                static_cast<unsigned long long>(
                    stats.queue.submissions));
    std::printf("(every service response verified bit-identical to "
                "its serial counterpart)\n");

    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json)
        bpsim_fatal("cannot write ", json_path);
    std::fprintf(json, "{\n  \"bench\": \"perf_service\",\n");
    std::fprintf(json, "  \"profile\": \"%s\",\n", profile.c_str());
    std::fprintf(json, "  \"branches\": %llu,\n",
                 static_cast<unsigned long long>(branches));
    std::fprintf(json, "  \"clients\": %u,\n", clients);
    std::fprintf(json, "  \"reps\": %u,\n", reps);
    std::fprintf(json, "  \"scheme\": \"gshare\",\n");
    std::fprintf(json, "  \"tiers\": [4, 12],\n");
    std::fprintf(json,
                 "  \"serial\": {\"seconds\": %.6f, \"replays\": "
                 "%u},\n",
                 serial_s, clients);
    std::fprintf(
        json,
        "  \"service\": {\"seconds\": %.6f, \"speedup\": %.3f,\n"
        "    \"submissions\": %llu, \"drains\": %llu, "
        "\"multi_request_drains\": %llu,\n"
        "    \"envelope_sweeps\": %llu, \"fused_groups\": %llu, "
        "\"coalesced_requests\": %llu},\n",
        service_s, speedup,
        static_cast<unsigned long long>(stats.queue.submissions),
        static_cast<unsigned long long>(stats.queue.drains),
        static_cast<unsigned long long>(
            stats.queue.multiRequestDrains),
        static_cast<unsigned long long>(
            stats.queue.batch.envelopeSweeps),
        static_cast<unsigned long long>(
            stats.queue.batch.fusedGroupsFormed),
        static_cast<unsigned long long>(
            stats.queue.batch.coalescedRequests));
    std::fprintf(json, "  \"verified\": \"bit-identical to serial "
                       "sweeps\"\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}

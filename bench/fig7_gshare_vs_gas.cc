/**
 * @file
 * Figure 7 reproduction: the difference in misprediction rate between
 * gshare and GAs for mpeg_play across the whole configuration space.
 * Following the paper's convention, POSITIVE numbers mean gshare
 * predicts better (its misprediction rate is lower), so the rendered
 * value is GAs minus gshare.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 7: misprediction difference, gshare vs GAs "
           "(mpeg_play; positive = gshare superior)");

    WallTimer timer;
    TraceHandle trace =
        internProfile(opts.session(), "mpeg_play", opts.branches);
    SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
    sweep.trackAliasing = false;

    SweepResult gas =
        runSweep(opts.session(), trace, SchemeKind::GAs, sweep);
    SweepResult gshare =
        runSweep(opts.session(), trace, SchemeKind::Gshare, sweep);

    Surface diff = gas.misprediction.difference(
        gshare.misprediction, "GAs minus gshare: mpeg_play");
    emitSurface(diff, opts, /*signed_values=*/true);
    opts.goldSurface("fig7/mpeg_play/diff", diff);

    // Summarise where gshare wins.
    unsigned wins_row_heavy = 0, wins_col_heavy = 0;
    unsigned n_row_heavy = 0, n_col_heavy = 0;
    for (const auto &tier : diff.tiers()) {
        for (const auto &pt : tier.points) {
            bool row_heavy = pt.rowBits > pt.colBits;
            (row_heavy ? n_row_heavy : n_col_heavy) += 1;
            if (pt.value > 0)
                (row_heavy ? wins_row_heavy : wins_col_heavy) += 1;
        }
    }
    std::printf("gshare superior in %u/%u row-heavy configurations vs "
                "%u/%u column-heavy ones\n\n",
                wins_row_heavy, n_row_heavy, wins_col_heavy,
                n_col_heavy);

    std::printf("Expected shape (paper): differences are small; "
                "gshare's wins cluster where the table has more rows "
                "than columns (where aliasing is highest), which are "
                "suboptimal configurations for both schemes anyway.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Technical-report-style full results: the paper presents only three
 * benchmarks in its figures and points at the companion report
 * (Sechrest, Lee, Mudge, CSE-TR-283-96) for the rest.  This bench
 * produces the equivalent: best configuration and misprediction per
 * scheme per table budget for ALL fourteen profiles.
 *
 * This is the longest-running bench; trim with branches=N if needed.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Full results (companion-TR style): best configurations "
           "for every profile");

    // Shorter default than the profile traces: fourteen profiles x six
    // schemes is a lot of sweeping.
    std::uint64_t n = opts.branches ? opts.branches : 1'000'000;
    WallTimer timer;

    for (const auto &name : profileNames()) {
        TraceHandle trace = internProfile(opts.session(), name, n);
        Table3Options t3;
        t3.budgetBits = {9, 12, 15};
        t3.bhtSizes = {1024};
        t3.threads = opts.threads;
        auto rows = bestConfigs(opts.session(), trace, t3);

        std::printf("--- %s ---\n", name.c_str());
        TableFormatter table({"predictor", "1st-level miss",
                              "512 counters", "4096 counters",
                              "32768 counters"});
        for (const auto &row : rows) {
            std::vector<std::string> cells = {row.scheme};
            cells.push_back(row.bhtMissRate < 0 ?
                                "-" :
                                TableFormatter::percent(
                                    row.bhtMissRate));
            for (const auto &best : row.best) {
                if (!best) {
                    cells.push_back("-");
                    continue;
                }
                char buf[64];
                std::snprintf(
                    buf, sizeof(buf), "%s (%s)",
                    TableFormatter::configLabel(best->rowBits,
                                                best->colBits).c_str(),
                    TableFormatter::percent(best->mispRate).c_str());
                cells.push_back(buf);
            }
            table.addRow(cells);
        }
        std::printf("%s\n", table.render().c_str());
        if (opts.csv)
            std::printf("%s\n", table.renderCsv().c_str());
    }
    reportWallClock(timer, opts);
    return 0;
}

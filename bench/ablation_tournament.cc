/**
 * @file
 * Extension bench: McFarling-style combining predictor versus its
 * components at an equal total counter budget, across all fourteen
 * profiles -- the "recent work ... combining schemes" direction the
 * paper's conclusion points to.
 */

#include "bench_util.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "stats/table_formatter.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Extension: tournament (addr + gshare) vs components at a "
           "4096-counter budget");

    TableFormatter table({"benchmark", "addr:12", "gshare:12:0",
                          "PAs:10:2 (1k BHT)",
                          "tournament(addr:11,gshare:11:0):11"});

    for (const auto &name : profileNames()) {
        // Cap the default lengths a little for bench runtime.
        std::uint64_t n =
            opts.branches ? opts.branches : 1'000'000;
        TraceHandle handle = internProfile(opts.session(), name, n);

        auto run = [&](const std::string &spec) {
            auto p = makePredictor(spec);
            TraceView view(handle);
            return TableFormatter::percent(
                runPredictor(view, *p).mispRate());
        };
        table.addRow({name, run("addr:12"), run("gshare:12:0"),
                      run("PAs:10:2:1024"),
                      run("tournament(addr:11,gshare:11:0):11")});
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nReading: the combiner tracks the better component "
                "per benchmark (bimodal on aliasing-bound large "
                "programs at this budget, gshare on correlation-rich "
                "small ones) at equal hardware, supporting the "
                "conclusion that controlling aliasing -- not more "
                "correlation -- is the key to further gains.\n");
    return 0;
}

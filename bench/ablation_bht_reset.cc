/**
 * @file
 * Ablation: the finite-BHT miss-reset policy.
 *
 * The paper resets a displaced history register to a prefix of 0xC3FF
 * "avoiding excessive aliasing for the patterns of all taken or all not
 * taken branches".  This bench quantifies that choice against the
 * obvious alternatives (all-zeros, all-ones, and keeping the victim's
 * bits) on the large-program profiles where BHT pressure is real.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Ablation: BHT miss-reset policy (PAs 2^10 x 2^2, 1K-entry "
           "4-way BHT)");

    const BhtResetPolicy policies[] = {
        BhtResetPolicy::C3ffPrefix,
        BhtResetPolicy::Zeros,
        BhtResetPolicy::Ones,
        BhtResetPolicy::Hold,
    };

    TableFormatter table({"benchmark", "0xC3FF-prefix", "zeros", "ones",
                          "hold"});

    for (const std::string name :
         {"mpeg_play", "real_gcc", "gs", "verilog"}) {
        TraceHandle handle =
            internProfile(opts.session(), name, opts.branches);
        auto trace = preparedTrace(opts.session(), handle);
        std::vector<std::string> row = {name};
        for (BhtResetPolicy policy : policies) {
            SweepOptions o;
            o.trackAliasing = false;
            o.bhtEntries = 1024;
            o.bhtAssoc = 4;
            o.bhtResetPolicy = policy;
            ConfigResult c = simulateConfig(
                *trace, SchemeKind::PAsFinite, 10, 2, o);
            row.push_back(TableFormatter::percent(c.mispRate));
        }
        table.addRow(row);
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nReading: the all-ones reset collides with the loop "
                "pattern and all-zeros with never-taken checks; the "
                "mixture prefix avoids both.  'hold' inherits a "
                "stranger's history entirely.\n");
    return 0;
}

/**
 * @file
 * Figure 3 reproduction: misprediction rates using a single column of
 * two-bit counters selected by global history (GAg), for all fourteen
 * benchmarks, history lengths 4 .. 15 bits (16 .. 32768 counters).
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 3: misprediction rates of GAg (global history into "
           "one column of counters)");
    WallTimer timer;

    SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
    sweep.trackAliasing = false;

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned n = sweep.minTotalBits; n <= sweep.maxTotalBits; ++n)
        headers.push_back(std::to_string(1u << n));
    TableFormatter table(headers);

    for (const auto &name : profileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepResult r =
            runSweep(opts.session(), trace, SchemeKind::GAg, sweep);
        std::vector<std::string> row = {name};
        for (unsigned n = sweep.minTotalBits; n <= sweep.maxTotalBits;
             ++n) {
            auto v = r.misprediction.at(n, n);
            row.push_back(v ? TableFormatter::percent(*v) : "-");
            if (v)
                opts.gold("fig3/" + name + "/t" + std::to_string(n),
                          *v);
        }
        table.addRow(row);
        if (opts.csv)
            std::printf("%s", r.misprediction.renderCsv().c_str());
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape (paper): with fewer branches the "
                "small SPECint92 programs suffer less GAg aliasing and "
                "do better at short histories; the larger programs "
                "need long histories before correlation outweighs "
                "pattern aliasing.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Figure 6 reproduction: gshare misprediction surfaces for the three
 * focus benchmarks.  The leftmost configuration of each tier (0 history
 * bits) coincides with address-indexed prediction, exactly as in the
 * paper.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 6: misprediction surfaces for gshare schemes");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
        sweep.trackAliasing = false;
        SweepResult r =
            runSweep(opts.session(), trace, SchemeKind::Gshare, sweep);
        emitSurface(r.misprediction, opts);
        opts.goldSurface("fig6/" + name, r.misprediction);
    }

    std::printf("Expected shape (paper): almost identical to the GAs "
                "surfaces (Figure 4).  Single-column configurations "
                "are adequate for small benchmarks such as espresso "
                "but suboptimal for the large ones.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

/**
 * @file
 * Figure 8 reproduction: the difference in misprediction rate between
 * Nair's path-based scheme (2 target-address bits per branch) and GAs
 * for mpeg_play.  Positive numbers mean the path scheme predicts
 * better, so the rendered value is GAs minus path.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 8: misprediction difference, path vs GAs "
           "(mpeg_play; positive = path superior)");

    WallTimer timer;
    TraceHandle trace =
        internProfile(opts.session(), "mpeg_play", opts.branches);
    SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
    sweep.trackAliasing = false;
    sweep.pathBitsPerTarget = 2;

    SweepResult gas =
        runSweep(opts.session(), trace, SchemeKind::GAs, sweep);
    SweepResult path =
        runSweep(opts.session(), trace, SchemeKind::Path, sweep);

    Surface diff = gas.misprediction.difference(
        path.misprediction, "GAs minus path: mpeg_play");
    emitSurface(diff, opts, /*signed_values=*/true);
    opts.goldSurface("fig8/mpeg_play/diff", diff);

    // Nair's own diagnosis: multi-bit target codes shorten the
    // reachable history, so with balanced or row-light splits the path
    // scheme should trail GAs.
    double balanced_sum = 0.0;
    unsigned balanced_n = 0;
    for (const auto &tier : diff.tiers()) {
        for (const auto &pt : tier.points) {
            if (pt.rowBits <= pt.colBits + 2 && pt.rowBits > 0) {
                balanced_sum += pt.value;
                ++balanced_n;
            }
        }
    }
    std::printf("mean (GAs - path) over balanced/column-heavy "
                "configurations: %+0.2f%%\n\n",
                balanced_n ? balanced_sum / balanced_n * 100.0 : 0.0);

    std::printf("Expected shape (paper): path reduces aliasing for "
                "very-few-column configurations but generally does "
                "slightly worse than GAs for equal-or-more-column "
                "splits, because each event consumes several history "
                "bits and fewer events fit in the register.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

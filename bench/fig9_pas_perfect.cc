/**
 * @file
 * Figure 9 reproduction: PAs misprediction surfaces with perfect
 * (unbounded) first-level histories for the three focus benchmarks.
 */

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 9: misprediction surfaces for PAs schemes with "
           "perfect histories");
    WallTimer timer;

    for (const auto &name : focusProfileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
        sweep.trackAliasing = false;
        SweepResult r = runSweep(opts.session(), trace,
                                 SchemeKind::PAsPerfect, sweep);
        emitSurface(r.misprediction, opts);
        opts.goldSurface("fig9/" + name, r.misprediction);

        // The paper's flatness observation: compare a tier's best
        // against its single-column configuration.
        for (unsigned tier : {10u, 15u}) {
            auto best = r.misprediction.bestInTier(tier);
            auto single = r.misprediction.at(tier, tier);
            if (best && single) {
                std::printf("  %6u counters: single-column %5.2f%% vs "
                            "best %5.2f%% (2^%u x 2^%u)\n",
                            1u << tier, *single * 100.0,
                            best->value * 100.0, best->rowBits,
                            best->colBits);
            }
        }
        std::printf("\n");
    }

    std::printf("Expected shape (paper): surfaces are flat -- "
                "single-column (all self-history) configurations are "
                "optimal or near-optimal because frequent self-history "
                "patterns imply the same prediction across branches; "
                "growing the second-level table adds little.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

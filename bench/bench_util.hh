/**
 * @file
 * Shared plumbing for the figure/table regeneration benches.
 *
 * Every bench binary accepts `branches=N` to rescale trace lengths,
 * `csv=1` to emit machine-readable output alongside the paper-style
 * rendering, and `threads=N` to bound the sweep engine's concurrency
 * (0, the default, uses every hardware thread; 1 reproduces the old
 * serial behaviour; results are identical either way).  Traces are
 * generated fresh per run (deterministic seeds), so bench output is
 * exactly reproducible.
 *
 * All benches drive the engine through a SweepSession (the facade in
 * sim/sweep_session.hh) rather than calling the plan/fuse machinery
 * directly.  `cache=DIR` points the session at a persistent .bpc
 * result cache: a second run of the same bench then serves its
 * sweeps from disk with identical output (the golden checks hold
 * cached or not).  Without `cache=`, results are cached in memory
 * for the life of the process, which already dedups repeated sweeps
 * within one bench.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "common/thread_pool.hh"
#include "sim/experiment.hh"
#include "sim/sweep_session.hh"
#include "verify/golden.hh"
#include "workload/profiles.hh"

namespace bpsim::bench {

/** Common bench options parsed from argv. */
struct BenchOptions
{
    /** Golden-regression mode (see golden.hh and EXPERIMENTS.md). */
    enum class GoldenMode
    {
        Off,   ///< normal run, nothing recorded
        Emit,  ///< write the run's results as the new golden file
        Check, ///< compare the run against the golden file; exit 1
               ///< on drift
    };

    /** Override for conditional-trace length (0 = profile default). */
    std::uint64_t branches = 0;
    /** Emit CSV blocks after the human-readable tables. */
    bool csv = false;
    /** Sweep executors: 0 = all hardware threads, 1 = serial. */
    unsigned threads = 0;
    /** Persistent .bpc result-cache directory (empty = memory only). */
    std::string cacheDir;

    GoldenMode goldenMode = GoldenMode::Off;
    /** Golden file path (default: <bench-name>.golden in cwd). */
    std::string goldenFile;
    /** Comparator tolerance (absolute + relative, golden.hh). */
    double goldenTol = 1e-9;
    /** Results recorded during the run when a golden mode is on. */
    verify::GoldenRecorder golden;

    /** Lazily created by session(); shared so copies reuse it. */
    std::shared_ptr<SweepSession> session_;

    static BenchOptions
    parse(int argc, const char *const *argv)
    {
        Config cfg = Config::parseArgs(argc, argv);
        // A typo'd BPSIM_SIMD override should fail loudly before any
        // sweep runs, not silently fall back to auto-detection.
        cli::orFatal(simdEnvStatus());
        BenchOptions o;
        o.branches =
            static_cast<std::uint64_t>(cli::requireInt(cfg, "branches", 0));
        o.csv = cli::requireBool(cfg, "csv", false);
        o.threads =
            static_cast<unsigned>(cli::requireInt(cfg, "threads", 0));
        o.cacheDir = cfg.getString("cache", "");

        // golden=emit|check (or the flag spellings --emit-golden /
        // --check-golden), golden_file=..., golden_tol=...
        std::string mode = cfg.getString("golden", "off");
        for (const std::string &arg : cfg.positional()) {
            if (arg == "--emit-golden")
                mode = "emit";
            else if (arg == "--check-golden")
                mode = "check";
        }
        if (mode == "emit")
            o.goldenMode = GoldenMode::Emit;
        else if (mode == "check")
            o.goldenMode = GoldenMode::Check;
        else if (mode != "off")
            bpsim_fatal("golden= must be off, emit or check, got '",
                        mode, "'");

        std::string stem = argc > 0 ? argv[0] : "bench";
        auto slash = stem.find_last_of('/');
        if (slash != std::string::npos)
            stem = stem.substr(slash + 1);
        o.goldenFile =
            cfg.getString("golden_file", stem + ".golden");
        o.goldenTol = cli::requireDouble(cfg, "golden_tol", 1e-9);
        return o;
    }

    /** Sweep options with the bench thread knob applied. */
    SweepOptions
    sweepOptions(SweepOptions sweep) const
    {
        sweep.threads = threads;
        return sweep;
    }

    /**
     * The bench's engine session (registry + prepared traces +
     * result cache), created on first use with the `cache=` dir.
     */
    SweepSession &
    session()
    {
        if (!session_)
            session_ = std::make_shared<SweepSession>(cacheDir);
        return *session_;
    }

    /** Record one scalar result (no-op when golden mode is off). */
    void
    gold(const std::string &key, double value)
    {
        if (goldenMode != GoldenMode::Off)
            golden.record(key, value);
    }

    /** Record a whole surface (no-op when golden mode is off). */
    void
    goldSurface(const std::string &prefix, const Surface &surface)
    {
        if (goldenMode != GoldenMode::Off)
            golden.recordSurface(prefix, surface);
    }

    /**
     * Finish the golden phase: write the file (emit), compare and
     * report drift (check), or do nothing (off).
     * @return the process exit code the driver should return
     */
    int
    goldenFinish()
    {
        switch (goldenMode) {
          case GoldenMode::Off:
            return 0;
          case GoldenMode::Emit:
            golden.writeFile(goldenFile);
            std::printf("\ngolden: wrote %zu values to %s\n",
                        golden.size(), goldenFile.c_str());
            return 0;
          case GoldenMode::Check: {
            auto problems = golden.compareTo(goldenFile, goldenTol);
            if (problems.empty()) {
                std::printf("\ngolden: %zu values match %s "
                            "(tolerance %g)\n",
                            golden.size(), goldenFile.c_str(),
                            goldenTol);
                return 0;
            }
            std::fprintf(stderr,
                         "\ngolden: %zu problem(s) against %s:\n",
                         problems.size(), goldenFile.c_str());
            for (const std::string &problem : problems)
                std::fprintf(stderr, "golden:   %s\n",
                             problem.c_str());
            return 1;
          }
        }
        return 0;
    }
};

/** Intern a profile's trace into the session; fatal on bad names. */
inline TraceHandle
internProfile(SweepSession &session, const std::string &profile,
              std::uint64_t branches)
{
    return cli::orFatal(session.internProfile(profile, branches));
}

/**
 * Run (or fetch from cache) one scheme sweep through the session.
 * Output is bit-identical whether computed or served from cache.
 */
inline SweepResult
runSweep(SweepSession &session, const TraceHandle &trace,
         SchemeKind kind, const SweepOptions &sweep)
{
    return cli::orFatal(
               session.sweep(SweepRequest{trace.hash, kind, sweep}))
        .result;
}

/** Table-3-style best-config rows via the session (cache-aware). */
inline std::vector<BestConfigRow>
bestConfigs(SweepSession &session, const TraceHandle &trace,
            const Table3Options &options)
{
    return cli::orFatal(session.bestConfigs(trace.hash, options));
}

/** The session's prepared form of @p trace, for point probes. */
inline std::shared_ptr<const PreparedTrace>
preparedTrace(SweepSession &session, const TraceHandle &trace)
{
    return cli::orFatal(session.prepared(trace.hash));
}

/** Print a bench banner naming the reproduced paper artefact. */
inline void
banner(const std::string &what)
{
    std::printf("==== %s ====\n", what.c_str());
    std::printf("Sechrest, Lee, Mudge: \"Correlation and Aliasing in "
                "Dynamic Branch Predictors\" (ISCA 1996), synthetic "
                "workload reproduction\n\n");
}

/** Render a surface plus optional CSV per the bench options. */
inline void
emitSurface(const Surface &surface, const BenchOptions &opts,
            bool signed_values = false)
{
    std::printf("%s\n", surface.render(true, signed_values).c_str());
    if (opts.csv)
        std::printf("%s\n", surface.renderCsv().c_str());
}

/** Wall-clock stopwatch for the speedup reporting below. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Report the run's wall clock and effective thread count.  Comparing
 * against a threads=1 rerun gives the sweep speedup; the output is
 * identical for any thread count, so the comparison is fair.
 */
inline void
reportWallClock(const WallTimer &timer, const BenchOptions &opts)
{
    std::printf("\nwall clock: %.2f s at threads=%u (%u hardware "
                "thread%s); rerun with threads=1 for the serial "
                "baseline\n",
                timer.seconds(),
                ThreadPool::resolveThreads(opts.threads),
                ThreadPool::hardwareThreads(),
                ThreadPool::hardwareThreads() == 1 ? "" : "s");
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH

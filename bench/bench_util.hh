/**
 * @file
 * Shared plumbing for the figure/table regeneration benches.
 *
 * Every bench binary accepts `branches=N` to rescale trace lengths,
 * `csv=1` to emit machine-readable output alongside the paper-style
 * rendering, and `threads=N` to bound the sweep engine's concurrency
 * (0, the default, uses every hardware thread; 1 reproduces the old
 * serial behaviour; results are identical either way).  Traces are
 * generated fresh per run (deterministic seeds), so bench output is
 * exactly reproducible.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/experiment.hh"
#include "workload/profiles.hh"

namespace bpsim::bench {

/** Common bench options parsed from argv. */
struct BenchOptions
{
    /** Override for conditional-trace length (0 = profile default). */
    std::uint64_t branches = 0;
    /** Emit CSV blocks after the human-readable tables. */
    bool csv = false;
    /** Sweep executors: 0 = all hardware threads, 1 = serial. */
    unsigned threads = 0;

    static BenchOptions
    parse(int argc, const char *const *argv)
    {
        Config cfg = Config::parseArgs(argc, argv);
        BenchOptions o;
        o.branches =
            static_cast<std::uint64_t>(cfg.getInt("branches", 0));
        o.csv = cfg.getBool("csv", false);
        o.threads =
            static_cast<unsigned>(cfg.getInt("threads", 0));
        return o;
    }

    /** Sweep options with the bench thread knob applied. */
    SweepOptions
    sweepOptions(SweepOptions sweep) const
    {
        sweep.threads = threads;
        return sweep;
    }
};

/** Print a bench banner naming the reproduced paper artefact. */
inline void
banner(const std::string &what)
{
    std::printf("==== %s ====\n", what.c_str());
    std::printf("Sechrest, Lee, Mudge: \"Correlation and Aliasing in "
                "Dynamic Branch Predictors\" (ISCA 1996), synthetic "
                "workload reproduction\n\n");
}

/** Render a surface plus optional CSV per the bench options. */
inline void
emitSurface(const Surface &surface, const BenchOptions &opts,
            bool signed_values = false)
{
    std::printf("%s\n", surface.render(true, signed_values).c_str());
    if (opts.csv)
        std::printf("%s\n", surface.renderCsv().c_str());
}

/** Wall-clock stopwatch for the speedup reporting below. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Report the run's wall clock and effective thread count.  Comparing
 * against a threads=1 rerun gives the sweep speedup; the output is
 * identical for any thread count, so the comparison is fair.
 */
inline void
reportWallClock(const WallTimer &timer, const BenchOptions &opts)
{
    std::printf("\nwall clock: %.2f s at threads=%u (%u hardware "
                "thread%s); rerun with threads=1 for the serial "
                "baseline\n",
                timer.seconds(),
                ThreadPool::resolveThreads(opts.threads),
                ThreadPool::hardwareThreads(),
                ThreadPool::hardwareThreads() == 1 ? "" : "s");
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH

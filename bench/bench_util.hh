/**
 * @file
 * Shared plumbing for the figure/table regeneration benches.
 *
 * Every bench binary accepts `branches=N` to rescale trace lengths and
 * `csv=1` to emit machine-readable output alongside the paper-style
 * rendering.  Traces are generated fresh per run (deterministic seeds),
 * so bench output is exactly reproducible.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "workload/profiles.hh"

namespace bpsim::bench {

/** Common bench options parsed from argv. */
struct BenchOptions
{
    /** Override for conditional-trace length (0 = profile default). */
    std::uint64_t branches = 0;
    /** Emit CSV blocks after the human-readable tables. */
    bool csv = false;

    static BenchOptions
    parse(int argc, const char *const *argv)
    {
        Config cfg = Config::parseArgs(argc, argv);
        BenchOptions o;
        o.branches =
            static_cast<std::uint64_t>(cfg.getInt("branches", 0));
        o.csv = cfg.getBool("csv", false);
        return o;
    }
};

/** Print a bench banner naming the reproduced paper artefact. */
inline void
banner(const std::string &what)
{
    std::printf("==== %s ====\n", what.c_str());
    std::printf("Sechrest, Lee, Mudge: \"Correlation and Aliasing in "
                "Dynamic Branch Predictors\" (ISCA 1996), synthetic "
                "workload reproduction\n\n");
}

/** Render a surface plus optional CSV per the bench options. */
inline void
emitSurface(const Surface &surface, const BenchOptions &opts,
            bool signed_values = false)
{
    std::printf("%s\n", surface.render(true, signed_values).c_str());
    if (opts.csv)
        std::printf("%s\n", surface.renderCsv().c_str());
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH

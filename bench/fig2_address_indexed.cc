/**
 * @file
 * Figure 2 reproduction: misprediction rates using a row of two-bit
 * counters (address-indexed predictors) for all fourteen benchmarks,
 * across table sizes from 16 (rear tier) to 32768 (front tier) counters.
 *
 * The paper's 3-D bar chart becomes a benchmark x size matrix here: each
 * row is one benchmark, each column one table size.
 */

#include "bench_util.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Figure 2: misprediction rates of address-indexed "
           "predictors (16 .. 32768 counters)");
    WallTimer timer;

    SweepOptions sweep = opts.sweepOptions(paperSweepOptions());
    sweep.trackAliasing = false;

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned n = sweep.minTotalBits; n <= sweep.maxTotalBits; ++n)
        headers.push_back(std::to_string(1u << n));
    TableFormatter table(headers);

    for (const auto &name : profileNames()) {
        TraceHandle trace =
            internProfile(opts.session(), name, opts.branches);
        SweepResult r = runSweep(opts.session(), trace,
                                 SchemeKind::AddressIndexed, sweep);
        std::vector<std::string> row = {name};
        for (unsigned n = sweep.minTotalBits; n <= sweep.maxTotalBits;
             ++n) {
            auto v = r.misprediction.at(n, 0);
            row.push_back(v ? TableFormatter::percent(*v) : "-");
            if (v)
                opts.gold("fig2/" + name + "/t" + std::to_string(n),
                          *v);
        }
        table.addRow(row);
        if (opts.csv)
            std::printf("%s", r.misprediction.renderCsv().c_str());
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape (paper): the five small SPECint92 "
                "programs saturate early (no gain from bigger tables); "
                "gcc and the IBS benchmarks keep improving because "
                "aliasing persists even in large tables.\n");
    reportWallClock(timer, opts);
    return opts.goldenFinish();
}

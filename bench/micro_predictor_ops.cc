/**
 * @file
 * Google-benchmark microbenchmarks: throughput of each predictor's
 * predict-and-train operation and of the sweep kernel, the quantities
 * that bound how fast the figure reproductions run.
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "common/packed_pht.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "predictor/factory.hh"
#include "sim/prepared_trace.hh"
#include "sim/sweep.hh"
#include "workload/executor.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

/** Shared medium workload (generated once). */
const MemoryTrace &
workload()
{
    static const MemoryTrace trace = [] {
        setQuiet(true);
        WorkloadParams p;
        p.name = "micro";
        p.seed = 1234;
        p.staticBranches = 2000;
        p.functionCount = 170;
        p.targetConditionals = 200'000;
        return generateTrace(p);
    }();
    return trace;
}

const PreparedTrace &
prepared()
{
    static const PreparedTrace t{workload()};
    return t;
}

void
predictorThroughput(benchmark::State &state, const std::string &spec)
{
    const MemoryTrace &trace = workload();
    auto predictor = makePredictor(spec);
    std::size_t i = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const BranchRecord &rec = trace[i];
        if (rec.isConditional())
            sink += predictor->onBranch(rec);
        i = (i + 1) % trace.size();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(predictorThroughput, addr_4k, "addr:12");
BENCHMARK_CAPTURE(predictorThroughput, gag_4k, "GAg:12");
BENCHMARK_CAPTURE(predictorThroughput, gas_64x64, "GAs:6:6");
BENCHMARK_CAPTURE(predictorThroughput, gshare_4k, "gshare:12:0");
BENCHMARK_CAPTURE(predictorThroughput, path_64x64, "path:6:6");
BENCHMARK_CAPTURE(predictorThroughput, pas_perfect, "PAs:10:2");
BENCHMARK_CAPTURE(predictorThroughput, pas_1k_bht, "PAs:10:2:1024");
BENCHMARK_CAPTURE(predictorThroughput, tournament,
                  "tournament(addr:11,gshare:11:0):11");
// The zoo's per-step scalar costs: one full model stepped alone.
// Compare with the zooModelStep rows below (trace-normalised
// model-steps/s) to see what batching buys per step.
BENCHMARK_CAPTURE(predictorThroughput, tage_1k_base_256e,
                  "tage:10:8");
BENCHMARK_CAPTURE(predictorThroughput, perceptron_h24_256e,
                  "perceptron:24:8");

namespace {

void
sweepKernel(benchmark::State &state)
{
    const PreparedTrace &t = prepared();
    SweepOptions o;
    o.trackAliasing = state.range(0) != 0;
    for (auto _ : state) {
        ConfigResult r =
            simulateConfig(t, SchemeKind::GAs, 6, 6, o);
        benchmark::DoNotOptimize(r.mispRate);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}

/**
 * The stream-cache effect: a finite-BHT point probe rebuilds the BHT
 * history stream on every uncached call, while a caller-held
 * StreamCache builds it once and replays only the kernel.
 */
void
sweepKernelFiniteBht(benchmark::State &state)
{
    const PreparedTrace &t = prepared();
    SweepOptions o;
    o.trackAliasing = false;
    o.bhtEntries = 256;
    if (state.range(0)) {
        StreamCache cache(t, o);
        for (auto _ : state) {
            ConfigResult r =
                simulateConfig(cache, SchemeKind::PAsFinite, 6, 6);
            benchmark::DoNotOptimize(r.mispRate);
        }
    } else {
        for (auto _ : state) {
            ConfigResult r =
                simulateConfig(t, SchemeKind::PAsFinite, 6, 6, o);
            benchmark::DoNotOptimize(r.mispRate);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}

/**
 * The fused inner loop in isolation: replay a synthetic decoded
 * record stream through a full 8-wide lane batch on one dispatch
 * target.  Items processed counts lane-updates (records x lanes), so
 * the scalar/sse2/avx2 rows are directly comparable and their ratio
 * is the pure kernel speedup with no sweep bookkeeping around it.
 */
void
laneBatchReplay(benchmark::State &state, SimdTarget target)
{
    if (!simdTargetSupported(target)) {
        state.SkipWithError("dispatch target not supported on host");
        return;
    }
    constexpr unsigned lanes = 8;
    constexpr unsigned indexBits = 12; // 4K-counter PHT per lane
    static const std::vector<std::uint32_t> records = [] {
        Pcg32 rng(0xBE9CF00DULL, 5);
        std::vector<std::uint32_t> r(1u << 16);
        for (std::uint32_t &d : r)
            d = rng.next(); // taken bit 31, index bits mixed below
        return r;
    }();

    std::vector<PackedPht> tables;
    LaneBatch batch;
    for (unsigned l = 0; l < lanes; ++l)
        tables.emplace_back(std::size_t{1} << indexBits);
    for (unsigned l = 0; l < lanes; ++l) {
        batch.totalMask[l] = (1u << indexBits) - 1;
        batch.pht[l] = tables[l].data();
        batch.misses[l] = 0;
    }
    batch.lanes = lanes;

    for (auto _ : state) {
        replayLaneBatch(target, records.data(), records.size(),
                        batch);
        benchmark::DoNotOptimize(batch.misses[0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(records.size() *
                                                      lanes));
}

/**
 * The packed-counter gather primitive alone: fetch one byte per lane
 * from eight separately-allocated PHTs.  This is the memory-bound
 * half of the lane batch; compare with laneBatchReplay to see how
 * much of the kernel is gather latency vs counter arithmetic.
 */
void
packedGather(benchmark::State &state, SimdTarget target)
{
    if (!simdTargetSupported(target)) {
        state.SkipWithError("dispatch target not supported on host");
        return;
    }
    constexpr unsigned lanes = 8;
    std::vector<PackedPht> tables;
    const std::uint8_t *bases[lanes];
    std::uint32_t idx[lanes];
    std::uint8_t out[lanes];
    for (unsigned l = 0; l < lanes; ++l)
        tables.emplace_back(std::size_t{1} << 10);
    for (unsigned l = 0; l < lanes; ++l) {
        bases[l] = tables[l].data();
        idx[l] = (l * 37u) & 0xFF;
    }
    for (auto _ : state) {
        gatherLaneBytes(target, bases, idx, lanes, out);
        benchmark::DoNotOptimize(out[0]);
        idx[0] = (idx[0] + 1) & 0xFF; // defeat trivial caching
    }
    state.SetItemsProcessed(state.iterations() * lanes);
}

/**
 * The zoo step cost at sweep granularity: one tier of TAGE or
 * perceptron configurations replayed per-config (runModelReplay, one
 * trace pass per lane) vs batched (runModelBatch, one decoded block
 * stepped by every lane).  Items processed counts model-steps
 * (branches x lanes), so the per-config/batched ratio is the batching
 * speedup per step.  A smaller trace than workload() keeps the
 * per-config rows affordable.
 */
const PreparedTrace &
zooPrepared()
{
    static const MemoryTrace trace = [] {
        setQuiet(true);
        WorkloadParams p;
        p.name = "micro-zoo";
        p.seed = 4321;
        p.staticBranches = 900;
        p.functionCount = 80;
        p.targetConditionals = 50'000;
        return generateTrace(p);
    }();
    static const PreparedTrace t{trace};
    return t;
}

void
zooModelStep(benchmark::State &state, SchemeKind kind, bool batched)
{
    const PreparedTrace &t = zooPrepared();
    SweepOptions o;
    o.minTotalBits = 12;
    o.maxTotalBits = 12;
    o.fuseJobs = batched;
    const std::size_t lanes = planSweep(kind, o).size();
    for (auto _ : state) {
        SweepResult r = sweepScheme(t, kind, o);
        benchmark::DoNotOptimize(r.bhtMissRate);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(t.size() * lanes));
}

/**
 * The batched perceptron inner loop in isolation: a full 8-wide lane
 * batch over a synthetic pre-offset index stream on one dispatch
 * target.  Items processed counts lane-updates, so the rows are
 * directly comparable across targets (same convention as
 * laneBatchReplay).
 */
void
perceptronBatchReplay(benchmark::State &state, SimdTarget target)
{
    if (!simdTargetSupported(target)) {
        state.SkipWithError("dispatch target not supported on host");
        return;
    }
    constexpr unsigned lanes = 8;
    constexpr unsigned tables = 4;
    constexpr unsigned entryBits = 10;
    constexpr std::size_t n = 1u << 14;
    static const std::vector<std::uint32_t> idx = [] {
        Pcg32 rng(0xF005BA11ULL, 9);
        std::vector<std::uint32_t> v(n * tables *
                                     PerceptronBatch::kMaxLanes);
        for (std::size_t i = 0; i < n; ++i)
            for (unsigned tb = 0; tb < tables; ++tb)
                for (unsigned l = 0; l < PerceptronBatch::kMaxLanes;
                     ++l)
                    v[(i * tables + tb) * PerceptronBatch::kMaxLanes +
                      l] = (tb << entryBits) +
                           rng.nextBounded(1u << entryBits);
        return v;
    }();
    static const std::vector<std::uint8_t> taken = [] {
        Pcg32 rng(0x7AC0BEEFULL, 3);
        std::vector<std::uint8_t> v(n);
        for (std::uint8_t &b : v)
            b = static_cast<std::uint8_t>(rng.nextBounded(2));
        return v;
    }();

    std::vector<std::vector<std::int8_t>> banks(lanes);
    PerceptronBatch batch;
    batch.lanes = lanes;
    batch.tables = tables;
    for (unsigned l = 0; l < lanes; ++l) {
        banks[l].assign((std::size_t{tables} << entryBits) +
                            PackedPht::kGatherSlack,
                        0);
        batch.weights[l] = banks[l].data();
        batch.theta[l] = 60;
    }

    for (auto _ : state) {
        replayPerceptronBatch(target, idx.data(), taken.data(), n,
                              batch);
        benchmark::DoNotOptimize(batch.misses[0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * lanes));
}

void
traceGeneration(benchmark::State &state)
{
    WorkloadParams p;
    p.name = "gen";
    p.seed = 77;
    p.staticBranches = 2000;
    p.functionCount = 170;
    p.targetConditionals =
        static_cast<std::uint64_t>(state.range(0));
    SyntheticProgram prog = buildProgram(p);
    for (auto _ : state) {
        ProgramExecutor exec(prog, p);
        BranchRecord rec;
        std::uint64_t n = 0;
        while (exec.next(rec))
            ++n;
        benchmark::DoNotOptimize(n);
        exec.reset();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

} // namespace

BENCHMARK(sweepKernel)->Arg(0)->Arg(1)->ArgNames({"aliasing"});
BENCHMARK(sweepKernelFiniteBht)->Arg(0)->Arg(1)->ArgNames({"cached"});
BENCHMARK_CAPTURE(laneBatchReplay, scalar, SimdTarget::Scalar);
BENCHMARK_CAPTURE(laneBatchReplay, sse2, SimdTarget::SSE2);
BENCHMARK_CAPTURE(laneBatchReplay, avx2, SimdTarget::AVX2);
BENCHMARK_CAPTURE(packedGather, scalar, SimdTarget::Scalar);
BENCHMARK_CAPTURE(packedGather, sse2, SimdTarget::SSE2);
BENCHMARK_CAPTURE(packedGather, avx2, SimdTarget::AVX2);
BENCHMARK_CAPTURE(zooModelStep, tage_per_config, SchemeKind::Tage,
                  false);
BENCHMARK_CAPTURE(zooModelStep, tage_batched, SchemeKind::Tage, true);
BENCHMARK_CAPTURE(zooModelStep, perceptron_per_config,
                  SchemeKind::Perceptron, false);
BENCHMARK_CAPTURE(zooModelStep, perceptron_batched,
                  SchemeKind::Perceptron, true);
BENCHMARK_CAPTURE(perceptronBatchReplay, scalar, SimdTarget::Scalar);
BENCHMARK_CAPTURE(perceptronBatchReplay, sse2, SimdTarget::SSE2);
BENCHMARK_CAPTURE(perceptronBatchReplay, avx2, SimdTarget::AVX2);
BENCHMARK(traceGeneration)->Arg(100'000);

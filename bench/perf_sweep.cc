/**
 * @file
 * Sweep throughput benchmark: wall-clock branch-config updates per
 * second for every sweep scheme, in three execution modes --
 *
 *   serial        per-config kernel, one trace replay per job
 *                 (threads=1, fuseJobs=off; the pre-fusion baseline)
 *   fused         fused single-pass kernel (threads=1, fuseJobs=on)
 *   fused+threads fused kernel with group-parallel execution
 *                 (threads=0, one executor per hardware thread)
 *
 * One unit of work is a single branch instance simulated through a
 * single configuration, so "branch-config updates/s" is comparable
 * across schemes, modes, trace lengths and hosts.  The three modes
 * produce bit-identical surfaces (verified in-process each run; a
 * mismatch is a hard failure), so the timing comparison is fair.
 *
 * Results are written to a JSON file (default BENCH_sweep.json) whose
 * format EXPERIMENTS.md documents; the `perf` ctest label runs a short
 * smoke of this binary.  Speedups are *reported*, never asserted --
 * the committed BENCH_sweep.json seeds the perf trajectory, CI only
 * checks that the report is produced.
 *
 * Knobs: branches=N (trace length, default 1000000 -- the paper's
 * profiles run 2-4M conditionals, so the default is sized to spill
 * the trace out of cache the way real runs do), reps=N (timed
 * repetitions, best-of, default 2), json=FILE, profile=NAME.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/sweep.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace {

struct ModeResult
{
    double seconds = 0.0;
    double throughput = 0.0; // branch-config updates per second
};

struct SchemeResult
{
    SchemeKind kind;
    std::size_t configs = 0;
    ModeResult serial;
    ModeResult fused;
    ModeResult fusedThreads;
    double fusedSpeedup = 0.0;
    double fusedThreadsSpeedup = 0.0;
};

/** Time one sweep run under @p opts, returning wall seconds. */
double
runOnce(const PreparedTrace &trace, SchemeKind kind,
        const SweepOptions &opts, Surface *surface_out)
{
    WallTimer timer;
    SweepResult result = sweepScheme(trace, kind, opts);
    const double secs = timer.seconds();
    if (surface_out)
        *surface_out = result.misprediction;
    return secs;
}

/** Fairness precondition: every mode computes the same surface, bit
 *  for bit; a mismatch is a hard failure. */
void
checkSurface(SchemeKind kind, const Surface &expect,
             const Surface &got)
{
    const auto &a = expect.tiers();
    const auto &b = got.tiers();
    bpsim_assert(a.size() == b.size(), "tier count drift");
    for (std::size_t t = 0; t < a.size(); ++t) {
        bpsim_assert(a[t].points.size() == b[t].points.size(),
                     "point count drift in tier ", a[t].totalBits);
        for (std::size_t p = 0; p < a[t].points.size(); ++p) {
            bpsim_assert(a[t].points[p].value == b[t].points[p].value,
                         "mode surfaces diverge for ",
                         schemeKindName(kind), " tier 2^",
                         a[t].totalBits, " rows 2^",
                         a[t].points[p].rowBits,
                         " -- fused kernel is not bit-identical");
        }
    }
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    const auto branches = static_cast<std::uint64_t>(
        cli::requireInt(cfg, "branches", 1000000));
    const auto reps =
        static_cast<unsigned>(cli::requireInt(cfg, "reps", 2));
    const std::string json_path =
        cfg.getString("json", "BENCH_sweep.json");
    const std::string profile = cfg.getString("profile", "mpeg_play");

    banner("Sweep throughput: serial vs fused vs fused+threads");
    std::printf("profile %s, %llu conditional branches, tiers 2^4.."
                "2^15, best of %u rep%s, %u hardware thread%s\n\n",
                profile.c_str(),
                static_cast<unsigned long long>(branches), reps,
                reps == 1 ? "" : "s", ThreadPool::hardwareThreads(),
                ThreadPool::hardwareThreads() == 1 ? "" : "s");

    PreparedTrace trace = prepareProfile(profile, branches);

    SweepOptions serial_opts = paperSweepOptions();
    serial_opts.trackAliasing = false;
    serial_opts.threads = 1;
    serial_opts.fuseJobs = false;
    SweepOptions fused_opts = serial_opts;
    fused_opts.fuseJobs = true;
    SweepOptions fused_threads_opts = fused_opts;
    fused_threads_opts.threads = 0;

    const SchemeKind kinds[] = {
        SchemeKind::AddressIndexed, SchemeKind::GAg,
        SchemeKind::GAs,            SchemeKind::Gshare,
        SchemeKind::Path,           SchemeKind::PAsPerfect,
        SchemeKind::PAsFinite,
    };

    std::vector<SchemeResult> results;
    std::printf("%-10s %10s | %14s | %14s %8s | %14s %8s\n", "scheme",
                "configs", "serial bc/s", "fused bc/s", "speedup",
                "fused+t bc/s", "speedup");
    for (SchemeKind kind : kinds) {
        SchemeResult r;
        r.kind = kind;
        r.configs = planSweep(kind, serial_opts).size();
        const double work = static_cast<double>(trace.size()) *
                            static_cast<double>(r.configs);

        // Interleave the modes within each rep (serial, fused,
        // fused+threads, serial, ...) so slow host drift during the
        // run hits every mode alike instead of biasing the ratios;
        // best-of-reps then discards transient interference.
        Surface expect("");
        for (unsigned rep = 0; rep < reps; ++rep) {
            Surface fused_surface(""), threaded_surface("");
            const double s = runOnce(trace, kind, serial_opts,
                                     rep == 0 ? &expect : nullptr);
            const double f =
                runOnce(trace, kind, fused_opts,
                        rep == 0 ? &fused_surface : nullptr);
            const double ft =
                runOnce(trace, kind, fused_threads_opts,
                        rep == 0 ? &threaded_surface : nullptr);
            if (rep == 0) {
                checkSurface(kind, expect, fused_surface);
                checkSurface(kind, expect, threaded_surface);
                r.serial.seconds = s;
                r.fused.seconds = f;
                r.fusedThreads.seconds = ft;
            } else {
                r.serial.seconds = std::min(r.serial.seconds, s);
                r.fused.seconds = std::min(r.fused.seconds, f);
                r.fusedThreads.seconds =
                    std::min(r.fusedThreads.seconds, ft);
            }
        }

        r.serial.throughput = work / r.serial.seconds;
        r.fused.throughput = work / r.fused.seconds;
        r.fusedThreads.throughput = work / r.fusedThreads.seconds;
        r.fusedSpeedup = r.serial.seconds / r.fused.seconds;
        r.fusedThreadsSpeedup =
            r.serial.seconds / r.fusedThreads.seconds;
        results.push_back(r);

        std::printf("%-10s %10zu | %14.3e | %14.3e %7.2fx | %14.3e "
                    "%7.2fx\n",
                    schemeKindName(kind), r.configs,
                    r.serial.throughput, r.fused.throughput,
                    r.fusedSpeedup, r.fusedThreads.throughput,
                    r.fusedThreadsSpeedup);
    }

    std::vector<double> fused_speedups, threaded_speedups;
    for (const SchemeResult &r : results) {
        fused_speedups.push_back(r.fusedSpeedup);
        threaded_speedups.push_back(r.fusedThreadsSpeedup);
    }
    const double fused_geo = geomean(fused_speedups);
    const double threaded_geo = geomean(threaded_speedups);
    std::printf("\ngeomean fused speedup %.2fx, fused+threads %.2fx "
                "(all surfaces verified bit-identical across modes)\n",
                fused_geo, threaded_geo);

    // Machine-readable record, consumed by CHANGES.md bookkeeping and
    // future perf-trajectory comparisons (see EXPERIMENTS.md).
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json)
        bpsim_fatal("cannot write ", json_path);
    std::fprintf(json, "{\n  \"bench\": \"perf_sweep\",\n");
    std::fprintf(json, "  \"profile\": \"%s\",\n", profile.c_str());
    std::fprintf(json, "  \"branches\": %llu,\n",
                 static_cast<unsigned long long>(trace.size()));
    std::fprintf(json, "  \"tiers\": [4, 15],\n");
    std::fprintf(json, "  \"reps\": %u,\n", reps);
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 ThreadPool::hardwareThreads());
    std::fprintf(json, "  \"unit\": \"branch-config updates per "
                       "second\",\n");
    std::fprintf(json, "  \"schemes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(json, "    {\"scheme\": \"%s\", \"configs\": "
                           "%zu,\n",
                     schemeKindName(r.kind), r.configs);
        std::fprintf(json,
                     "     \"serial\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e},\n",
                     r.serial.seconds, r.serial.throughput);
        std::fprintf(json,
                     "     \"fused\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e},\n",
                     r.fused.seconds, r.fused.throughput);
        std::fprintf(json,
                     "     \"fused_threads\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e},\n",
                     r.fusedThreads.seconds,
                     r.fusedThreads.throughput);
        std::fprintf(json,
                     "     \"fused_speedup\": %.3f, "
                     "\"fused_threads_speedup\": %.3f}%s\n",
                     r.fusedSpeedup, r.fusedThreadsSpeedup,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"geomean_fused_speedup\": %.3f,\n"
                 "  \"geomean_fused_threads_speedup\": %.3f\n}\n",
                 fused_geo, threaded_geo);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}

/**
 * @file
 * Sweep throughput benchmark: wall-clock branch-config updates per
 * second for every sweep scheme, in these execution modes --
 *
 *   serial        per-config kernel, one trace replay per job
 *                 (threads=1, fuseJobs=off; the pre-fusion baseline)
 *   fused[T]      fused single-pass kernel (threads=1, fuseJobs=on),
 *                 once per SIMD dispatch target T this host supports
 *                 (scalar always; sse2/avx2 when the CPU has them)
 *   fused+threads fused kernel, auto dispatch, group-parallel
 *                 execution (threads=0, one executor per hw thread)
 *
 * One unit of work is a single branch instance simulated through a
 * single configuration, so "branch-config updates/s" is comparable
 * across schemes, modes, trace lengths and hosts.  All modes produce
 * bit-identical surfaces (verified in-process each run; a mismatch is
 * a hard failure), so the timing comparison is fair.
 *
 * Results are written to a JSON file (default BENCH_sweep.json) whose
 * format EXPERIMENTS.md documents; the `perf` ctest label runs a short
 * smoke of this binary.  Speedups are *reported*, never asserted --
 * the committed BENCH_sweep.json seeds the perf trajectory, CI only
 * checks that the report is produced.  Each scheme's record carries
 * the kernel telemetry of its widest-target run (dispatch target,
 * lanes per group, blocks replayed, hot bytes per branch) so a perf
 * regression can be traced to a dispatch or fusion change without
 * rerunning under a profiler.
 *
 * A within-group scaling phase then runs one representative scheme
 * (GAs) through the full fused_threads x segments knob matrix
 * (1/2/4/8 on each axis).  Lane-sharded cells (segments=1) are
 * asserted bit-identical to the exact surface; speculative cells
 * (segments>1) report their max per-point epsilon instead.  The cell
 * grid, speedups and worker utilizations land in the same JSON under
 * "within_group_scaling".
 *
 * A second phase times the persistent result cache (sweep_session.hh):
 * the same table3-scale sweep set is run cold (compute + store), warm
 * (memory hits) and disk-warm (a fresh session reading .bpc files),
 * with every served surface verified bit-identical against the cold
 * run.  Timings, speedups and cache counters go to a separate JSON
 * report (default BENCH_cache.json).
 *
 * Knobs: branches=N (trace length, default 1000000 -- the paper's
 * profiles run 2-4M conditionals, so the default is sized to spill
 * the trace out of cache the way real runs do), reps=N (timed
 * repetitions, best-of, default 2), json=FILE, cache_json=FILE,
 * cache_dir=DIR (default: a scratch dir wiped before and after),
 * profile=NAME.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/sweep.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace {

struct ModeResult
{
    double seconds = 0.0;
    double throughput = 0.0; // branch-config updates per second
};

struct SchemeResult
{
    SchemeKind kind;
    std::size_t configs = 0;
    ModeResult serial;
    /** One fused-mode measurement per supported dispatch target. */
    std::vector<ModeResult> fused;
    ModeResult fusedThreads;
    double fusedThreadsSpeedup = 0.0;
    /** Telemetry from the widest-target single-thread fused run. */
    KernelTelemetry kernel;
};

/**
 * Time one sweep run under @p opts, returning wall seconds.  Routed
 * through the session with the cache bypassed, so the measurement is
 * pure engine compute (the facade adds only key derivation).
 */
double
runOnce(SweepSession &session, const TraceHash &hash, SchemeKind kind,
        const SweepOptions &opts, Surface *surface_out,
        KernelTelemetry *kernel_out = nullptr)
{
    SweepRequest request{hash, kind, opts};
    request.bypassCache = true;
    WallTimer timer;
    SweepResult result =
        cli::orFatal(session.sweep(request)).result;
    const double secs = timer.seconds();
    if (surface_out)
        *surface_out = result.misprediction;
    if (kernel_out)
        *kernel_out = result.kernel;
    return secs;
}

/** Fairness precondition: every mode computes the same surface, bit
 *  for bit; a mismatch is a hard failure. */
void
checkSurface(SchemeKind kind, const Surface &expect,
             const Surface &got)
{
    const auto &a = expect.tiers();
    const auto &b = got.tiers();
    bpsim_assert(a.size() == b.size(), "tier count drift");
    for (std::size_t t = 0; t < a.size(); ++t) {
        bpsim_assert(a[t].points.size() == b[t].points.size(),
                     "point count drift in tier ", a[t].totalBits);
        for (std::size_t p = 0; p < a[t].points.size(); ++p) {
            bpsim_assert(a[t].points[p].value == b[t].points[p].value,
                         "mode surfaces diverge for ",
                         schemeKindName(kind), " tier 2^",
                         a[t].totalBits, " rows 2^",
                         a[t].points[p].rowBits,
                         " -- fused kernel is not bit-identical");
        }
    }
}

/** Largest per-point |delta| between two surfaces of the same plan:
 *  the auditable epsilon of a speculative segment-parallel run. */
double
maxSurfaceDelta(const Surface &expect, const Surface &got)
{
    double worst = 0.0;
    const auto &a = expect.tiers();
    const auto &b = got.tiers();
    bpsim_assert(a.size() == b.size(), "tier count drift");
    for (std::size_t t = 0; t < a.size(); ++t)
        for (std::size_t p = 0; p < a[t].points.size(); ++p)
            worst = std::max(worst, std::abs(a[t].points[p].value -
                                             b[t].points[p].value));
    return worst;
}

/** One cell of the within-group scaling matrix. */
struct MatrixCell
{
    unsigned fusedThreads = 1;
    unsigned segments = 1;
    double seconds = 0.0;
    double speedup = 0.0;
    /** Max per-point |delta| vs exact (0 when segments == 1, where
     *  bit-identity is asserted, not measured). */
    double epsilon = 0.0;
    double utilization = 0.0;
};

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::parseArgs(argc, argv);
    const auto branches = static_cast<std::uint64_t>(
        cli::requireInt(cfg, "branches", 1000000));
    const auto reps =
        static_cast<unsigned>(cli::requireInt(cfg, "reps", 2));
    const std::string json_path =
        cfg.getString("json", "BENCH_sweep.json");
    const std::string cache_json_path =
        cfg.getString("cache_json", "BENCH_cache.json");
    std::string cache_dir = cfg.getString("cache_dir", "");
    const std::string profile = cfg.getString("profile", "mpeg_play");

    const std::vector<SimdTarget> targets = supportedSimdTargets();

    banner("Sweep throughput: serial vs fused[simd] vs fused+threads");
    std::printf("profile %s, %llu conditional branches, tiers 2^4.."
                "2^15, best of %u rep%s, %u hardware thread%s, "
                "dispatch targets:",
                profile.c_str(),
                static_cast<unsigned long long>(branches), reps,
                reps == 1 ? "" : "s", ThreadPool::hardwareThreads(),
                ThreadPool::hardwareThreads() == 1 ? "" : "s");
    for (SimdTarget t : targets)
        std::printf(" %s", simdTargetName(t));
    std::printf("\n\n");

    SweepSession session;
    TraceHandle handle = internProfile(session, profile, branches);
    auto trace = preparedTrace(session, handle);

    SweepOptions serial_opts = paperSweepOptions();
    serial_opts.trackAliasing = false;
    serial_opts.threads = 1;
    serial_opts.fuseJobs = false;
    SweepOptions fused_threads_opts = serial_opts;
    fused_threads_opts.fuseJobs = true;
    fused_threads_opts.threads = 0;

    const SchemeKind kinds[] = {
        SchemeKind::AddressIndexed, SchemeKind::GAg,
        SchemeKind::GAs,            SchemeKind::Gshare,
        SchemeKind::Path,           SchemeKind::PAsPerfect,
        SchemeKind::PAsFinite,
    };

    std::vector<SchemeResult> results;
    std::printf("%-10s %7s | %12s |", "scheme", "configs",
                "serial bc/s");
    for (SimdTarget t : targets)
        std::printf(" %12s %6s |", simdTargetName(t), "spd");
    std::printf(" %12s %6s\n", "fused+t bc/s", "spd");
    for (SchemeKind kind : kinds) {
        SchemeResult r;
        r.kind = kind;
        r.fused.resize(targets.size());

        // Interleave the modes within each rep (serial, fused per
        // target, fused+threads, serial, ...) so slow host drift
        // during the run hits every mode alike instead of biasing
        // the ratios; best-of-reps then discards transient
        // interference.
        Surface expect("");
        for (unsigned rep = 0; rep < reps; ++rep) {
            const double s =
                runOnce(session, handle.hash, kind, serial_opts,
                        rep == 0 ? &expect : nullptr);
            if (rep == 0) {
                r.serial.seconds = s;
                // One surface point per swept configuration.
                for (const auto &tier : expect.tiers())
                    r.configs += tier.points.size();
            } else {
                r.serial.seconds = std::min(r.serial.seconds, s);
            }

            for (std::size_t t = 0; t < targets.size(); ++t) {
                SweepOptions fused_opts = serial_opts;
                fused_opts.fuseJobs = true;
                fused_opts.simd = targets[t];
                Surface surface("");
                const bool widest = t + 1 == targets.size();
                const double f = runOnce(
                    session, handle.hash, kind, fused_opts,
                    rep == 0 ? &surface : nullptr,
                    rep == 0 && widest ? &r.kernel : nullptr);
                if (rep == 0) {
                    checkSurface(kind, expect, surface);
                    r.fused[t].seconds = f;
                } else {
                    r.fused[t].seconds =
                        std::min(r.fused[t].seconds, f);
                }
            }

            Surface threaded_surface("");
            const double ft =
                runOnce(session, handle.hash, kind,
                        fused_threads_opts,
                        rep == 0 ? &threaded_surface : nullptr);
            if (rep == 0) {
                checkSurface(kind, expect, threaded_surface);
                r.fusedThreads.seconds = ft;
            } else {
                r.fusedThreads.seconds =
                    std::min(r.fusedThreads.seconds, ft);
            }
        }

        const double work = static_cast<double>(trace->size()) *
                            static_cast<double>(r.configs);
        r.serial.throughput = work / r.serial.seconds;
        for (ModeResult &m : r.fused)
            m.throughput = work / m.seconds;
        r.fusedThreads.throughput = work / r.fusedThreads.seconds;
        r.fusedThreadsSpeedup =
            r.serial.seconds / r.fusedThreads.seconds;
        results.push_back(r);

        std::printf("%-10s %7zu | %12.3e |", schemeKindName(kind),
                    r.configs, r.serial.throughput);
        for (const ModeResult &m : r.fused)
            std::printf(" %12.3e %5.2fx |", m.throughput,
                        r.serial.seconds / m.seconds);
        std::printf(" %12.3e %5.2fx\n", r.fusedThreads.throughput,
                    r.fusedThreadsSpeedup);
    }

    // Geomeans: fused-vs-serial per target, vector-vs-scalar-fused
    // per vector target, threads-vs-serial.
    std::vector<double> per_target_geo(targets.size());
    std::vector<double> vs_scalar_geo(targets.size());
    for (std::size_t t = 0; t < targets.size(); ++t) {
        std::vector<double> vs_serial, vs_scalar;
        for (const SchemeResult &r : results) {
            vs_serial.push_back(r.serial.seconds /
                                r.fused[t].seconds);
            vs_scalar.push_back(r.fused[0].seconds /
                                r.fused[t].seconds);
        }
        per_target_geo[t] = geomean(vs_serial);
        vs_scalar_geo[t] = geomean(vs_scalar);
    }
    std::vector<double> threaded_speedups;
    for (const SchemeResult &r : results)
        threaded_speedups.push_back(r.fusedThreadsSpeedup);
    const double threaded_geo = geomean(threaded_speedups);

    std::printf("\ngeomean speedups vs serial:");
    for (std::size_t t = 0; t < targets.size(); ++t)
        std::printf(" fused[%s] %.2fx", simdTargetName(targets[t]),
                    per_target_geo[t]);
    std::printf(", fused+threads %.2fx\n", threaded_geo);
    for (std::size_t t = 1; t < targets.size(); ++t)
        std::printf("geomean fused[%s] vs fused[scalar]: %.2fx\n",
                    simdTargetName(targets[t]), vs_scalar_geo[t]);
    std::printf("(all surfaces verified bit-identical across modes "
                "and targets)\n");

    // ---- Within-group scaling: fused_threads x segments matrix ---
    //
    // One representative scheme (GAs, the paper's centerpiece) run
    // through every combination of the two within-group knobs.  Lane
    // sharding (fused_threads) must stay bit-identical at every cell;
    // speculative segmentation (segments > 1) reports its max
    // per-point epsilon against the exact surface instead.  The full
    // 1/2/4/8 grid always runs -- on hosts with fewer hardware
    // threads the extra cells still verify correctness, but their
    // speedups measure oversubscription, not scaling (interpret
    // against "hardware_threads" in the JSON).
    const SchemeKind matrix_kind = SchemeKind::GAs;
    const unsigned matrix_levels[] = {1, 2, 4, 8};
    SweepOptions matrix_base = serial_opts;
    matrix_base.fuseJobs = true;

    std::printf("\n==== Within-group scaling: %s, fused_threads x "
                "segments (warmup %u) ====\n",
                schemeKindName(matrix_kind),
                matrix_base.segmentWarmup);
    Surface matrix_exact("");
    std::vector<MatrixCell> matrix;
    double matrix_base_s = 0.0;
    std::printf("%4s |", "ft\\K");
    for (unsigned segs : matrix_levels)
        std::printf("  %10s=%u |", "segments", segs);
    std::printf("\n");
    for (unsigned ft : matrix_levels) {
        std::printf("%4u |", ft);
        for (unsigned segs : matrix_levels) {
            MatrixCell cell;
            cell.fusedThreads = ft;
            cell.segments = segs;
            SweepOptions opts = matrix_base;
            opts.fusedThreads = ft;
            opts.segments = segs;
            Surface surface("");
            KernelTelemetry kernel;
            for (unsigned rep = 0; rep < reps; ++rep) {
                const double s = runOnce(
                    session, handle.hash, matrix_kind, opts,
                    rep == 0 ? &surface : nullptr,
                    rep == 0 ? &kernel : nullptr);
                cell.seconds =
                    rep == 0 ? s : std::min(cell.seconds, s);
            }
            if (ft == 1 && segs == 1) {
                matrix_exact = surface;
                matrix_base_s = cell.seconds;
            }
            if (segs == 1)
                checkSurface(matrix_kind, matrix_exact, surface);
            else
                cell.epsilon = maxSurfaceDelta(matrix_exact, surface);
            cell.speedup = matrix_base_s / cell.seconds;
            cell.utilization = kernel.workerUtilization();
            matrix.push_back(cell);
            std::printf(" %6.3fs %4.2fx |", cell.seconds,
                        cell.speedup);
        }
        std::printf("\n");
    }
    double matrix_max_eps = 0.0;
    for (const MatrixCell &cell : matrix)
        matrix_max_eps = std::max(matrix_max_eps, cell.epsilon);
    std::printf("(segments=1 cells bit-identical to exact; max "
                "speculative epsilon %.3e mispredict-rate points)\n",
                matrix_max_eps);

    // ---- Zoo phase: batched model-lane replay vs per-config ------
    //
    // The modern-predictor zoo replays full TAGE/perceptron models,
    // so its baseline is the per-config runModelReplay path -- one
    // scalar trace pass per configuration.  The batched engine
    // (runModelBatch) decodes each 2048-branch block once, shares the
    // TAGE tag/index folds across lanes and steps perceptron lanes
    // through the SIMD dot-product kernel.  This phase records the
    // batched-vs-per-config matrix on a fig_tage_aliasing-sized
    // surface (tiers spanning the fig's entry 4..8 x base 6..10
    // budgets) with bit-identity asserted per dispatch target.
    const SchemeKind zoo_kinds[] = {SchemeKind::Tage,
                                    SchemeKind::Perceptron};
    SweepOptions zoo_serial = serial_opts;
    zoo_serial.minTotalBits = 10;
    zoo_serial.maxTotalBits = 18;
    SweepOptions zoo_threads_opts = zoo_serial;
    zoo_threads_opts.fuseJobs = true;
    zoo_threads_opts.threads = 0;

    std::printf("\n==== Zoo throughput: per-config vs batched model "
                "replay (tiers 2^%u..2^%u) ====\n",
                zoo_serial.minTotalBits, zoo_serial.maxTotalBits);
    std::vector<SchemeResult> zoo_results;
    std::printf("%-10s %7s | %12s |", "scheme", "configs",
                "percfg bc/s");
    for (SimdTarget t : targets)
        std::printf(" %12s %6s |", simdTargetName(t), "spd");
    std::printf(" %12s %6s\n", "batch+t bc/s", "spd");
    for (SchemeKind kind : zoo_kinds) {
        SchemeResult r;
        r.kind = kind;
        r.fused.resize(targets.size());

        Surface expect("");
        for (unsigned rep = 0; rep < reps; ++rep) {
            const double s =
                runOnce(session, handle.hash, kind, zoo_serial,
                        rep == 0 ? &expect : nullptr);
            if (rep == 0) {
                r.serial.seconds = s;
                for (const auto &tier : expect.tiers())
                    r.configs += tier.points.size();
            } else {
                r.serial.seconds = std::min(r.serial.seconds, s);
            }

            for (std::size_t t = 0; t < targets.size(); ++t) {
                SweepOptions batched_opts = zoo_serial;
                batched_opts.fuseJobs = true;
                batched_opts.simd = targets[t];
                Surface surface("");
                const bool widest = t + 1 == targets.size();
                const double f = runOnce(
                    session, handle.hash, kind, batched_opts,
                    rep == 0 ? &surface : nullptr,
                    rep == 0 && widest ? &r.kernel : nullptr);
                if (rep == 0) {
                    checkSurface(kind, expect, surface);
                    r.fused[t].seconds = f;
                } else {
                    r.fused[t].seconds =
                        std::min(r.fused[t].seconds, f);
                }
            }

            Surface threaded_surface("");
            const double ft =
                runOnce(session, handle.hash, kind, zoo_threads_opts,
                        rep == 0 ? &threaded_surface : nullptr);
            if (rep == 0) {
                checkSurface(kind, expect, threaded_surface);
                r.fusedThreads.seconds = ft;
            } else {
                r.fusedThreads.seconds =
                    std::min(r.fusedThreads.seconds, ft);
            }
        }

        const double work = static_cast<double>(trace->size()) *
                            static_cast<double>(r.configs);
        r.serial.throughput = work / r.serial.seconds;
        for (ModeResult &m : r.fused)
            m.throughput = work / m.seconds;
        r.fusedThreads.throughput = work / r.fusedThreads.seconds;
        r.fusedThreadsSpeedup =
            r.serial.seconds / r.fusedThreads.seconds;
        zoo_results.push_back(r);

        std::printf("%-10s %7zu | %12.3e |", schemeKindName(kind),
                    r.configs, r.serial.throughput);
        for (const ModeResult &m : r.fused)
            std::printf(" %12.3e %5.2fx |", m.throughput,
                        r.serial.seconds / m.seconds);
        std::printf(" %12.3e %5.2fx\n", r.fusedThreads.throughput,
                    r.fusedThreadsSpeedup);
    }
    std::printf("(all zoo surfaces verified bit-identical across "
                "modes and targets)\n");

    // Machine-readable record, consumed by CHANGES.md bookkeeping and
    // future perf-trajectory comparisons (see EXPERIMENTS.md).
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json)
        bpsim_fatal("cannot write ", json_path);
    std::fprintf(json, "{\n  \"bench\": \"perf_sweep\",\n");
    std::fprintf(json, "  \"profile\": \"%s\",\n", profile.c_str());
    std::fprintf(json, "  \"branches\": %llu,\n",
                 static_cast<unsigned long long>(trace->size()));
    std::fprintf(json, "  \"tiers\": [4, 15],\n");
    std::fprintf(json, "  \"reps\": %u,\n", reps);
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 ThreadPool::hardwareThreads());
    std::fprintf(json, "  \"trace_bytes_per_branch\": %.3f,\n",
                 trace->bytesPerBranch());
    std::fprintf(json, "  \"simd_targets\": [");
    for (std::size_t t = 0; t < targets.size(); ++t)
        std::fprintf(json, "\"%s\"%s", simdTargetName(targets[t]),
                     t + 1 < targets.size() ? ", " : "");
    std::fprintf(json, "],\n");
    std::fprintf(json, "  \"unit\": \"branch-config updates per "
                       "second\",\n");
    std::fprintf(json, "  \"schemes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(json, "    {\"scheme\": \"%s\", \"configs\": "
                           "%zu,\n",
                     schemeKindName(r.kind), r.configs);
        std::fprintf(json,
                     "     \"serial\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e},\n",
                     r.serial.seconds, r.serial.throughput);
        std::fprintf(json, "     \"fused\": {\n");
        for (std::size_t t = 0; t < targets.size(); ++t) {
            const ModeResult &m = r.fused[t];
            std::fprintf(
                json,
                "      \"%s\": {\"seconds\": %.6f, \"throughput\": "
                "%.3e,\n       \"speedup\": %.3f, "
                "\"speedup_vs_scalar_fused\": %.3f}%s\n",
                simdTargetName(targets[t]), m.seconds, m.throughput,
                r.serial.seconds / m.seconds,
                r.fused[0].seconds / m.seconds,
                t + 1 < targets.size() ? "," : "");
        }
        std::fprintf(json, "     },\n");
        std::fprintf(json,
                     "     \"fused_threads\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e, \"speedup\": %.3f},\n",
                     r.fusedThreads.seconds,
                     r.fusedThreads.throughput,
                     r.fusedThreadsSpeedup);
        std::fprintf(
            json,
            "     \"kernel\": {\"target\": \"%s\", "
            "\"fused_groups\": %llu, \"fallback_jobs\": %llu,\n"
            "      \"lanes_per_group\": %.2f, \"lane_batches\": "
            "%llu, \"blocks_replayed\": %llu,\n"
            "      \"hot_bytes_per_branch\": %.2f, "
            "\"segments_per_group\": %.2f,\n"
            "      \"shards_per_group\": %.2f, \"warmup_branches\": "
            "%llu, \"worker_utilization\": %.3f}}%s\n",
            simdTargetName(r.kernel.target),
            static_cast<unsigned long long>(r.kernel.fusedGroups),
            static_cast<unsigned long long>(r.kernel.fallbackJobs),
            r.kernel.lanesPerGroup(),
            static_cast<unsigned long long>(r.kernel.laneBatches),
            static_cast<unsigned long long>(r.kernel.blocksReplayed),
            r.kernel.hotBytesPerBranch(),
            r.kernel.segmentsPerGroup(), r.kernel.shardsPerGroup(),
            static_cast<unsigned long long>(r.kernel.warmupBranches),
            r.kernel.workerUtilization(),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"within_group_scaling\": {\"scheme\": \"%s\", "
                 "\"segment_warmup\": %u,\n"
                 "   \"max_speculative_epsilon\": %.3e,\n"
                 "   \"note\": \"speedups above hardware_threads "
                 "measure oversubscription, not scaling\",\n"
                 "   \"cells\": [\n",
                 schemeKindName(matrix_kind),
                 matrix_base.segmentWarmup, matrix_max_eps);
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        const MatrixCell &cell = matrix[i];
        std::fprintf(json,
                     "    {\"fused_threads\": %u, \"segments\": %u, "
                     "\"seconds\": %.6f, \"speedup\": %.3f, "
                     "\"epsilon\": %.3e, \"worker_utilization\": "
                     "%.3f}%s\n",
                     cell.fusedThreads, cell.segments, cell.seconds,
                     cell.speedup, cell.epsilon, cell.utilization,
                     i + 1 < matrix.size() ? "," : "");
    }
    std::fprintf(json, "  ]},\n");
    std::fprintf(json,
                 "  \"zoo\": {\"tiers\": [%u, %u],\n"
                 "   \"unit\": \"branch-config updates per second\",\n"
                 "   \"schemes\": [\n",
                 zoo_serial.minTotalBits, zoo_serial.maxTotalBits);
    for (std::size_t i = 0; i < zoo_results.size(); ++i) {
        const SchemeResult &r = zoo_results[i];
        std::fprintf(json,
                     "    {\"scheme\": \"%s\", \"configs\": %zu,\n",
                     schemeKindName(r.kind), r.configs);
        std::fprintf(json,
                     "     \"per_config\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e},\n",
                     r.serial.seconds, r.serial.throughput);
        std::fprintf(json, "     \"batched\": {\n");
        for (std::size_t t = 0; t < targets.size(); ++t) {
            const ModeResult &m = r.fused[t];
            std::fprintf(
                json,
                "      \"%s\": {\"seconds\": %.6f, \"throughput\": "
                "%.3e,\n       \"speedup\": %.3f, "
                "\"speedup_vs_scalar_batched\": %.3f}%s\n",
                simdTargetName(targets[t]), m.seconds, m.throughput,
                r.serial.seconds / m.seconds,
                r.fused[0].seconds / m.seconds,
                t + 1 < targets.size() ? "," : "");
        }
        std::fprintf(json, "     },\n");
        std::fprintf(json,
                     "     \"batched_threads\": {\"seconds\": %.6f, "
                     "\"throughput\": %.3e, \"speedup\": %.3f},\n",
                     r.fusedThreads.seconds,
                     r.fusedThreads.throughput,
                     r.fusedThreadsSpeedup);
        std::fprintf(
            json,
            "     \"kernel\": {\"target\": \"%s\", "
            "\"model_groups\": %llu, \"model_lanes\": %llu,\n"
            "      \"model_lanes_per_group\": %.2f, "
            "\"model_batches\": %llu, \"blocks_replayed\": %llu,\n"
            "      \"segments_per_group\": %.2f, "
            "\"shards_per_group\": %.2f, \"worker_utilization\": "
            "%.3f}}%s\n",
            simdTargetName(r.kernel.target),
            static_cast<unsigned long long>(r.kernel.modelGroups),
            static_cast<unsigned long long>(r.kernel.modelLanes),
            r.kernel.modelLanesPerGroup(),
            static_cast<unsigned long long>(r.kernel.modelBatches),
            static_cast<unsigned long long>(r.kernel.blocksReplayed),
            r.kernel.segmentsPerGroup(), r.kernel.shardsPerGroup(),
            r.kernel.workerUtilization(),
            i + 1 < zoo_results.size() ? "," : "");
    }
    std::fprintf(json, "  ]},\n");
    std::fprintf(json, "  \"geomean_fused_speedup\": {");
    for (std::size_t t = 0; t < targets.size(); ++t)
        std::fprintf(json, "\"%s\": %.3f%s",
                     simdTargetName(targets[t]), per_target_geo[t],
                     t + 1 < targets.size() ? ", " : "");
    std::fprintf(json, "},\n");
    std::fprintf(json, "  \"geomean_simd_vs_scalar_fused\": {");
    for (std::size_t t = 1; t < targets.size(); ++t)
        std::fprintf(json, "\"%s\": %.3f%s",
                     simdTargetName(targets[t]), vs_scalar_geo[t],
                     t + 1 < targets.size() ? ", " : "");
    std::fprintf(json, "},\n");
    std::fprintf(json,
                 "  \"geomean_fused_threads_speedup\": %.3f\n}\n",
                 threaded_geo);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());

    // ---- Result-cache phase: cold vs warm vs disk-warm ----------
    //
    // The same table3-scale sweep set (every scheme, tiers 2^4..2^15)
    // runs three times: cold (compute + .bpc store), warm (memory
    // hits in the same session) and disk-warm (a fresh session whose
    // registry is empty, so every answer must come from .bpc files).
    // Every served surface is verified bit-identical to the cold run.
    const bool scratch_cache = cache_dir.empty();
    if (scratch_cache) {
        cache_dir = (std::filesystem::temp_directory_path() /
                     "bpsim_perf_sweep_cache")
                        .string();
    }
    std::filesystem::remove_all(cache_dir);

    std::printf("\n==== Result cache: cold vs warm vs disk-warm "
                "(dir %s) ====\n",
                cache_dir.c_str());
    SweepOptions cache_opts = paperSweepOptions();
    cache_opts.trackAliasing = false;
    cache_opts.threads = 0;

    auto run_phase = [&](SweepSession &s,
                         std::vector<Surface> *surfaces,
                         const std::vector<Surface> *expect) {
        WallTimer timer;
        std::size_t i = 0;
        for (SchemeKind kind : kinds) {
            SweepResult r = cli::orFatal(s.sweep(
                SweepRequest{handle.hash, kind, cache_opts})).result;
            if (surfaces)
                surfaces->push_back(r.misprediction);
            if (expect)
                checkSurface(kind, (*expect)[i], r.misprediction);
            ++i;
        }
        return timer.seconds();
    };

    std::vector<Surface> cold_surfaces;
    SweepSession cold_session(cache_dir);
    internProfile(cold_session, profile, branches);
    const double cold_s =
        run_phase(cold_session, &cold_surfaces, nullptr);
    const double warm_s =
        run_phase(cold_session, nullptr, &cold_surfaces);

    SweepSession disk_session(cache_dir);
    const double disk_s =
        run_phase(disk_session, nullptr, &cold_surfaces);
    const auto warm_stats = cold_session.cache().stats();
    const auto disk_stats = disk_session.cache().stats();

    const double warm_speedup = cold_s / warm_s;
    const double disk_speedup = cold_s / disk_s;
    std::printf("cold  %9.3f s (%zu sweeps computed and stored)\n",
                cold_s, cold_surfaces.size());
    std::printf("warm  %9.3f s (%7.1fx, memory hits %llu)\n", warm_s,
                warm_speedup,
                static_cast<unsigned long long>(
                    warm_stats.memoryHits));
    std::printf("disk  %9.3f s (%7.1fx, disk hits %llu, empty "
                "registry)\n",
                disk_s, disk_speedup,
                static_cast<unsigned long long>(disk_stats.diskHits));
    std::printf("(all cached surfaces verified bit-identical to the "
                "cold run)\n");

    FILE *cache_json = std::fopen(cache_json_path.c_str(), "w");
    if (!cache_json)
        bpsim_fatal("cannot write ", cache_json_path);
    std::fprintf(cache_json, "{\n  \"bench\": \"perf_sweep_cache\",\n");
    std::fprintf(cache_json, "  \"profile\": \"%s\",\n",
                 profile.c_str());
    std::fprintf(cache_json, "  \"branches\": %llu,\n",
                 static_cast<unsigned long long>(trace->size()));
    std::fprintf(cache_json, "  \"tiers\": [4, 15],\n");
    std::fprintf(cache_json, "  \"schemes\": %zu,\n",
                 cold_surfaces.size());
    std::fprintf(cache_json, "  \"engine_version\": %u,\n",
                 kEngineVersion);
    std::fprintf(cache_json,
                 "  \"cold\": {\"seconds\": %.6f, \"misses\": %llu, "
                 "\"store_failures\": %llu},\n",
                 cold_s,
                 static_cast<unsigned long long>(warm_stats.misses),
                 static_cast<unsigned long long>(
                     warm_stats.storeFailures));
    std::fprintf(cache_json,
                 "  \"warm\": {\"seconds\": %.6f, \"speedup\": %.1f, "
                 "\"memory_hits\": %llu},\n",
                 warm_s, warm_speedup,
                 static_cast<unsigned long long>(
                     warm_stats.memoryHits));
    std::fprintf(cache_json,
                 "  \"disk\": {\"seconds\": %.6f, \"speedup\": %.1f, "
                 "\"disk_hits\": %llu, \"corrupt\": %llu},\n",
                 disk_s, disk_speedup,
                 static_cast<unsigned long long>(disk_stats.diskHits),
                 static_cast<unsigned long long>(disk_stats.corrupt));
    std::fprintf(cache_json,
                 "  \"verified\": \"bit-identical to cold run\"\n}\n");
    std::fclose(cache_json);
    std::printf("wrote %s\n", cache_json_path.c_str());

    if (scratch_cache)
        std::filesystem::remove_all(cache_dir);
    return 0;
}

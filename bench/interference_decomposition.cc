/**
 * @file
 * Companion analysis to Figure 5: decompose the measured aliasing into
 * destructive / neutral / constructive interference (Young, Gloy &
 * Smith's taxonomy, which the paper cites when noting that "not all of
 * this aliasing is destructive").
 *
 * For each focus benchmark and several GAs configurations, compare the
 * raw conflict rate (what Figure 5 plots) with the net accuracy damage
 * actually caused by sharing.
 */

#include "bench_util.hh"
#include "sim/interference.hh"
#include "stats/table_formatter.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    banner("Interference decomposition for GAs (companion to "
           "Figure 5)");

    struct Config
    {
        unsigned rowBits;
        unsigned colBits;
    };
    const Config configs[] = {{0, 9}, {6, 3}, {9, 0}, {6, 6}, {12, 0},
                              {8, 7}};

    for (const auto &name : focusProfileNames()) {
        TraceHandle handle =
            internProfile(opts.session(), name, opts.branches);
        auto trace = preparedTrace(opts.session(), handle);
        std::printf("--- %s ---\n", name.c_str());
        TableFormatter table({"config", "conflict rate", "destructive",
                              "constructive", "net damage",
                              "shared misp", "private misp"});
        for (const Config &c : configs) {
            SweepOptions o;
            o.trackAliasing = true;
            ConfigResult sweep = simulateConfig(
                *trace, SchemeKind::GAs, c.rowBits, c.colBits, o);
            InterferenceResult r = analyzeInterference(
                *trace, SchemeKind::GAs, c.rowBits, c.colBits, o);
            table.addRow(
                {TableFormatter::configLabel(c.rowBits, c.colBits),
                 TableFormatter::percent(sweep.aliasRate),
                 TableFormatter::percent(r.destructiveRate()),
                 TableFormatter::percent(r.constructiveRate()),
                 TableFormatter::percent(r.netDamage()),
                 TableFormatter::percent(r.sharedMispRate()),
                 TableFormatter::percent(r.privateMispRate())});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Reading: the conflict rate (Figure 5's metric) far "
                "exceeds the net accuracy damage -- most aliasing is "
                "neutral, and a visible slice is constructive, exactly "
                "the caveat the paper raises about interpreting "
                "aliasing measurements.\n");
    return 0;
}
